//! Portable SIMD layer: runtime feature detection and dispatched reduction
//! kernels.
//!
//! Zero external crates: on x86_64 the fast paths are ordinary Rust loops
//! compiled inside `#[target_feature(enable = "avx2")]` functions, selected at
//! runtime with `is_x86_feature_detected!`. On aarch64 NEON is part of the
//! baseline target, so the portable loops already vectorize and the dispatch
//! collapses to the scalar backend. Everything else falls back to the same
//! portable code compiled for the baseline target.
//!
//! ## Bit-exactness rules (DESIGN.md §11)
//!
//! * Element-wise kernels (see [`crate::soa`]) are bit-exact in every backend:
//!   each output element is computed by the same f64 expression in the same
//!   order, so vectorizing across elements cannot change results. They
//!   dispatch unconditionally.
//! * **Reductions are different.** A lane-split sum reassociates floating
//!   point addition and is *not* bit-exact against the sequential fold the
//!   scalar pipeline uses. Figure outputs must stay byte-identical
//!   (ROADMAP standing constraint), so every reduction here exists in two
//!   forms: `*_ordered` (sequential fold, the reference) and the lane-split
//!   fast form. The `*_auto` entry points keep any window shorter than
//!   [`SIMD_MIN_REDUCE`] on the ordered path — every window the link pipeline
//!   reduces (silent windows, symbol windows, LTF spans are all ≲ a few
//!   hundred samples) sits far below the floor, mirroring how the
//!   [`crate::fir`] crossover keeps pipeline-sized convolutions on the
//!   bit-exact direct path.
//! * The lane-split forms use the **same fixed 4-way split in every backend**,
//!   so scalar and AVX2 runs of the *same* function are bit-identical to each
//!   other; only the fast-vs-ordered pairing differs (within rounding).
//!
//! ## Disabling SIMD
//!
//! Set `BACKFI_SIMD=off` (or `0`/`scalar`) in the environment, or call
//! [`force_scalar`] from a test, to pin every dispatched kernel to the
//! baseline-codegen path. CI runs the full test suite once in this mode.

use crate::Complex;
use std::sync::atomic::{AtomicU8, Ordering};

/// Which instruction-set backend the dispatched kernels run on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Backend {
    /// Portable code compiled for the baseline target (SSE2 on x86_64,
    /// NEON on aarch64 — both part of those targets' baselines).
    Scalar,
    /// Runtime-detected AVX2 codegen (x86_64 only).
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

impl Backend {
    /// Short label for logs and bench records.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => "avx2",
        }
    }
}

/// Reductions shorter than this stay on the sequential `*_ordered` path in
/// the `*_auto` entry points, keeping every pipeline-sized window bit-exact
/// with the pre-SIMD code (figure outputs are diffed byte-for-byte).
pub const SIMD_MIN_REDUCE: usize = 4096;

/// 0 = uninitialized, 1 = native backend, 2 = forced scalar.
static FORCE: AtomicU8 = AtomicU8::new(0);

fn env_disabled() -> bool {
    matches!(
        std::env::var("BACKFI_SIMD").as_deref(),
        Ok("off") | Ok("0") | Ok("scalar")
    )
}

fn force_state() -> u8 {
    let s = FORCE.load(Ordering::Relaxed);
    if s != 0 {
        return s;
    }
    let s = if env_disabled() { 2 } else { 1 };
    // A concurrent first call computes the same value: the env var is the
    // only input, so the race is benign.
    FORCE.store(s, Ordering::Relaxed);
    s
}

/// Test hook: pin every dispatched kernel to the scalar backend (`true`) or
/// restore runtime detection (`false`). Overrides `BACKFI_SIMD`.
///
/// All dispatched kernels are bit-identical across backends (see the module
/// docs), so flipping this concurrently with other threads is safe — it only
/// changes which codegen runs, never the results.
pub fn force_scalar(on: bool) {
    FORCE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

/// The backend the dispatched kernels currently run on.
pub fn backend() -> Backend {
    if force_state() == 2 {
        return Backend::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    Backend::Scalar
}

// ------------------------------------------------------------- reductions ---

/// Sequential-order energy `Σ|x[i]|²` — bit-identical to the fold the scalar
/// pipeline has always used ([`crate::stats::mean_power`] × len). Reference
/// form for [`energy`].
pub fn energy_ordered(x: &[Complex]) -> f64 {
    let mut acc = 0.0;
    for v in x {
        acc += v.norm_sqr();
    }
    acc
}

#[inline(always)]
fn energy_impl(x: &[Complex]) -> f64 {
    // Fixed 4-way split regardless of backend, so scalar and AVX2 runs agree
    // bit-for-bit with each other (NOT with the ordered fold).
    let mut acc = [0.0f64; 4];
    let chunks = x.chunks_exact(4);
    let tail = chunks.remainder();
    for c in chunks {
        acc[0] += c[0].norm_sqr();
        acc[1] += c[1].norm_sqr();
        acc[2] += c[2].norm_sqr();
        acc[3] += c[3].norm_sqr();
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for v in tail {
        total += v.norm_sqr();
    }
    total
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn energy_avx2(x: &[Complex]) -> f64 {
    energy_impl(x)
}

/// Lane-split energy `Σ|x[i]|²`. Fast, but the 4-way accumulator split
/// reassociates the sum — use [`energy_ordered`] (or [`energy_auto`]) where
/// byte-identical figure output matters.
pub fn energy(x: &[Complex]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: backend() returns Avx2 only after runtime detection.
        return unsafe { energy_avx2(x) };
    }
    energy_impl(x)
}

/// Size-dispatched energy: ordered below [`SIMD_MIN_REDUCE`] (bit-exact with
/// the scalar pipeline), lane-split above it.
pub fn energy_auto(x: &[Complex]) -> f64 {
    if x.len() < SIMD_MIN_REDUCE {
        energy_ordered(x)
    } else {
        energy(x)
    }
}

/// Size-dispatched mean power, bit-exact with
/// [`crate::stats::mean_power`] below [`SIMD_MIN_REDUCE`]. Returns 0 for an
/// empty block, like `mean_power`.
pub fn mean_power_auto(x: &[Complex]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    energy_auto(x) / x.len() as f64
}

/// Sequential-order MRC inner products: `(Σ y[i]·conj(r[i]), Σ |r[i]|²)` in
/// one pass, bit-identical to the accumulation loop `mrc_symbol` has always
/// used. Reference form for [`dot_conj_energy`].
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot_conj_energy_ordered(y: &[Complex], r: &[Complex]) -> (Complex, f64) {
    assert_eq!(y.len(), r.len(), "dot_conj_energy: length mismatch");
    let mut num = Complex::ZERO;
    let mut den = 0.0;
    for (a, b) in y.iter().zip(r) {
        num += *a * b.conj();
        den += b.norm_sqr();
    }
    (num, den)
}

#[inline(always)]
fn dot_conj_energy_impl(y: &[Complex], r: &[Complex]) -> (Complex, f64) {
    assert_eq!(y.len(), r.len(), "dot_conj_energy: length mismatch");
    let mut nre = [0.0f64; 4];
    let mut nim = [0.0f64; 4];
    let mut den = [0.0f64; 4];
    let yc = y.chunks_exact(4);
    let rc = r.chunks_exact(4);
    let ytail = yc.remainder();
    let rtail = rc.remainder();
    for (a, b) in yc.zip(rc) {
        for l in 0..4 {
            let p = a[l] * b[l].conj();
            nre[l] += p.re;
            nim[l] += p.im;
            den[l] += b[l].norm_sqr();
        }
    }
    let mut num = Complex::new(
        (nre[0] + nre[1]) + (nre[2] + nre[3]),
        (nim[0] + nim[1]) + (nim[2] + nim[3]),
    );
    let mut d = (den[0] + den[1]) + (den[2] + den[3]);
    for (a, b) in ytail.iter().zip(rtail) {
        num += *a * b.conj();
        d += b.norm_sqr();
    }
    (num, d)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_conj_energy_avx2(y: &[Complex], r: &[Complex]) -> (Complex, f64) {
    dot_conj_energy_impl(y, r)
}

/// Lane-split MRC inner products (see [`dot_conj_energy_ordered`] for the
/// exact-order reference).
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot_conj_energy(y: &[Complex], r: &[Complex]) -> (Complex, f64) {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        // SAFETY: backend() returns Avx2 only after runtime detection.
        return unsafe { dot_conj_energy_avx2(y, r) };
    }
    dot_conj_energy_impl(y, r)
}

/// Size-dispatched MRC inner products: ordered below [`SIMD_MIN_REDUCE`]
/// (bit-exact with the scalar pipeline — every figure-path symbol window is),
/// lane-split above it.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn dot_conj_energy_auto(y: &[Complex], r: &[Complex]) -> (Complex, f64) {
    if y.len() < SIMD_MIN_REDUCE {
        dot_conj_energy_ordered(y, r)
    } else {
        dot_conj_energy(y, r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::cgauss_vec;
    use crate::rng::SplitMix64;
    use crate::stats;

    #[test]
    fn backend_reports_something() {
        let b = backend();
        assert!(!b.label().is_empty());
    }

    #[test]
    fn ordered_energy_matches_mean_power() {
        let mut rng = SplitMix64::new(1);
        for n in [0usize, 1, 3, 100, 4097] {
            let x = cgauss_vec(&mut rng, n, 1.3);
            let e = energy_ordered(&x);
            if n > 0 {
                assert_eq!(e / n as f64, stats::mean_power(&x), "n={n}");
            } else {
                assert_eq!(e, 0.0);
            }
        }
    }

    #[test]
    fn lane_split_energy_close_to_ordered() {
        let mut rng = SplitMix64::new(2);
        for n in [1usize, 4, 5, 31, 1000, 8192] {
            let x = cgauss_vec(&mut rng, n, 2.0);
            let a = energy(&x);
            let b = energy_ordered(&x);
            assert!(
                (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                "n={n}: {a} vs {b}"
            );
        }
    }

    #[test]
    fn auto_is_ordered_below_floor() {
        let mut rng = SplitMix64::new(3);
        let x = cgauss_vec(&mut rng, SIMD_MIN_REDUCE - 1, 1.0);
        assert_eq!(energy_auto(&x).to_bits(), energy_ordered(&x).to_bits());
        let (na, da) = dot_conj_energy_auto(&x, &x);
        let (no, d0) = dot_conj_energy_ordered(&x, &x);
        assert_eq!(na.re.to_bits(), no.re.to_bits());
        assert_eq!(na.im.to_bits(), no.im.to_bits());
        assert_eq!(da.to_bits(), d0.to_bits());
    }

    #[test]
    fn forced_scalar_is_bit_identical_to_native() {
        let mut rng = SplitMix64::new(4);
        let x = cgauss_vec(&mut rng, 4099, 1.0);
        let y = cgauss_vec(&mut rng, 4099, 1.0);
        let native_e = energy(&x);
        let (native_n, native_d) = dot_conj_energy(&y, &x);
        force_scalar(true);
        let scalar_e = energy(&x);
        let (scalar_n, scalar_d) = dot_conj_energy(&y, &x);
        force_scalar(false);
        assert_eq!(native_e.to_bits(), scalar_e.to_bits());
        assert_eq!(native_n.re.to_bits(), scalar_n.re.to_bits());
        assert_eq!(native_n.im.to_bits(), scalar_n.im.to_bits());
        assert_eq!(native_d.to_bits(), scalar_d.to_bits());
    }

    #[test]
    fn dot_conj_energy_nan_inf_propagate_like_ordered() {
        // NaN/Inf lanes must flow through both forms without panicking.
        let mut y = vec![Complex::new(1.0, -2.0); 9];
        let mut r = vec![Complex::new(0.5, 0.25); 9];
        y[3] = Complex::new(f64::NAN, 0.0);
        r[7] = Complex::new(f64::INFINITY, 1.0);
        let (n_fast, d_fast) = dot_conj_energy(&y, &r);
        let (n_ord, d_ord) = dot_conj_energy_ordered(&y, &r);
        assert!(n_fast.re.is_nan() && n_ord.re.is_nan());
        assert!(d_fast.is_infinite() && d_ord.is_infinite());
    }
}
