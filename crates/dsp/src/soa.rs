//! Structure-of-arrays (planar) complex kernels for the receive hot paths.
//!
//! The AoS `[Complex]` layout interleaves re/im in memory, which blocks the
//! autovectorizer on the inner loops of convolution, correlation, and
//! demapping. This module holds the same arithmetic over *planar* `&[f64]`
//! re/im slices, where each output element is an independent elementwise
//! expression the compiler can vectorize freely.
//!
//! ## Bit-exactness contract
//!
//! Every kernel here evaluates, per output element, the *identical* sequence
//! of f64 operations as its AoS `_direct` counterpart (same products, same
//! add/sub order — see the per-function docs for the reference it mirrors).
//! Vectorization only batches independent elements, so results are
//! bit-identical to the direct forms on every backend, and the routing in
//! [`crate::fir`] / [`crate::correlate`] cannot perturb figure output.
//! The `_equiv` test suites pin this with `to_bits` comparisons, including
//! NaN/Inf/denormal lanes.
//!
//! One documented exemption: when an output element is NaN, its *sign and
//! payload bits* may differ between backends/opt-levels — Rust and LLVM
//! leave NaN bit patterns unspecified, so e.g. `a − b` may lower to
//! `a + (−b)` and flip which quiet NaN propagates. A NaN lane in one form is
//! always a NaN lane in the other, and NaN sign is unobservable downstream
//! (no `copysign`/`to_bits` on sample data; every comparison and every
//! formatter treats all NaNs alike), so figure output stays byte-identical.
//!
//! Backend selection (AVX2 vs baseline codegen) comes from
//! [`crate::simd::backend`]; `BACKFI_SIMD=off` or
//! [`crate::simd::force_scalar`] pins the baseline path.

use crate::simd::{backend, Backend};
use crate::Complex;

// ---------------------------------------------------------- AoS ↔ SoA ------

/// Split an AoS complex slice into freshly allocated planar re/im vectors.
pub fn split(x: &[Complex]) -> (Vec<f64>, Vec<f64>) {
    let mut re = Vec::with_capacity(x.len());
    let mut im = Vec::with_capacity(x.len());
    for v in x {
        re.push(v.re);
        im.push(v.im);
    }
    (re, im)
}

/// Split an AoS complex slice into caller-provided planar slices.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn split_into(x: &[Complex], re: &mut [f64], im: &mut [f64]) {
    assert!(
        x.len() == re.len() && x.len() == im.len(),
        "split_into: length mismatch"
    );
    for (i, v) in x.iter().enumerate() {
        re[i] = v.re;
        im[i] = v.im;
    }
}

/// Merge planar re/im slices back into a freshly allocated AoS vector.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn merge(re: &[f64], im: &[f64]) -> Vec<Complex> {
    assert_eq!(re.len(), im.len(), "merge: length mismatch");
    re.iter()
        .zip(im)
        .map(|(&r, &i)| Complex::new(r, i))
        .collect()
}

/// Merge planar re/im slices into a caller-provided AoS slice.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn merge_into(re: &[f64], im: &[f64], out: &mut [Complex]) {
    assert!(
        re.len() == im.len() && re.len() == out.len(),
        "merge_into: length mismatch"
    );
    for (i, o) in out.iter_mut().enumerate() {
        *o = Complex::new(re[i], im[i]);
    }
}

// ------------------------------------------------------ elementwise bodies --
//
// Each `*_impl` is the single portable body; `#[target_feature]` wrappers
// below re-instantiate it with AVX2 codegen. `#[inline(always)]` makes the
// body inline into each instantiation so the feature attribute actually
// reaches the loops.

#[inline(always)]
fn magnitude_sqr_impl(re: &[f64], im: &[f64], out: &mut [f64]) {
    for i in 0..out.len() {
        // Mirrors `Complex::norm_sqr`: re·re + im·im.
        out[i] = re[i] * re[i] + im[i] * im[i];
    }
}

#[inline(always)]
fn cmul_impl(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64], or: &mut [f64], oi: &mut [f64]) {
    for i in 0..or.len() {
        // Mirrors `Complex::mul`: (a.re·b.re − a.im·b.im, a.re·b.im + a.im·b.re).
        or[i] = ar[i] * br[i] - ai[i] * bi[i];
        oi[i] = ar[i] * bi[i] + ai[i] * br[i];
    }
}

#[inline(always)]
fn cmac_impl(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64], or: &mut [f64], oi: &mut [f64]) {
    for i in 0..or.len() {
        or[i] += ar[i] * br[i] - ai[i] * bi[i];
        oi[i] += ar[i] * bi[i] + ai[i] * br[i];
    }
}

#[inline(always)]
fn axpy_impl(cre: f64, cim: f64, xr: &[f64], xi: &[f64], yr: &mut [f64], yi: &mut [f64]) {
    for k in 0..yr.len() {
        // Mirrors `y[k] += c * x[k]` with `Complex::mul(self=c, rhs=x[k])`.
        yr[k] += cre * xr[k] - cim * xi[k];
        yi[k] += cre * xi[k] + cim * xr[k];
    }
}

#[inline(always)]
fn dist_sqr_impl(pre: f64, pim: f64, cre: &[f64], cim: &[f64], out: &mut [f64]) {
    for i in 0..out.len() {
        // Mirrors `(point - c[i]).norm_sqr()`.
        let dr = pre - cre[i];
        let di = pim - cim[i];
        out[i] = dr * dr + di * di;
    }
}

#[inline(always)]
fn masked_min2_impl(dist: &[f64], labels: &[u8], bit: u32) -> (f64, f64) {
    let mut d0 = f64::INFINITY;
    let mut d1 = f64::INFINITY;
    for (d, &l) in dist.iter().zip(labels) {
        // Branchless form of "min into the side this label selects": the
        // non-selected side gets +∞, and `min(acc, +∞) == acc` because the
        // accumulators start at +∞ and `f64::min` never returns NaN from a
        // non-NaN operand. NaN distances lose the min on either side —
        // exactly like the branchy reference (`f64::min` ignores NaN).
        let is1 = (l >> bit) & 1 == 1;
        let m0 = if is1 { f64::INFINITY } else { *d };
        let m1 = if is1 { *d } else { f64::INFINITY };
        d0 = d0.min(m0);
        d1 = d1.min(m1);
    }
    (d0, d1)
}

/// Fused max-log demapper core: one pass over the constellation computing,
/// for every label bit `b < nbits`, the min squared distance over points with
/// bit `b` clear (`d0[b]`) and set (`d1[b]`). Same per-accumulator candidate
/// sequence as [`dist_sqr_planar`] followed by per-bit [`masked_min2`].
#[inline(always)]
fn demap_mins_impl(
    pre: f64,
    pim: f64,
    cre: &[f64],
    cim: &[f64],
    labels: &[u8],
    nbits: usize,
) -> ([f64; 6], [f64; 6]) {
    let mut d0 = [f64::INFINITY; 6];
    let mut d1 = [f64::INFINITY; 6];
    for i in 0..cre.len() {
        let dr = pre - cre[i];
        let di = pim - cim[i];
        let d = dr * dr + di * di;
        let l = labels[i];
        for (b, (a0, a1)) in d0.iter_mut().zip(d1.iter_mut()).enumerate().take(nbits) {
            let is1 = (l >> b) & 1 == 1;
            let m0 = if is1 { f64::INFINITY } else { d };
            let m1 = if is1 { d } else { f64::INFINITY };
            *a0 = a0.min(m0);
            *a1 = a1.min(m1);
        }
    }
    (d0, d1)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn equalize_impl(
    sr: &[f64],
    si: &[f64],
    hr: &[f64],
    hi: &[f64],
    dre: f64,
    dim: f64,
    or: &mut [f64],
    oi: &mut [f64],
    csi: &mut [f64],
) {
    for i in 0..or.len() {
        let hre = hr[i];
        let him = hi[i];
        // csi = h.norm_sqr()
        let d = hre * hre + him * him;
        csi[i] = d;
        // t = point * derot  (Complex::mul, self = point)
        let tre = sr[i] * dre - si[i] * dim;
        let tim = sr[i] * dim + si[i] * dre;
        if d > 1e-15 {
            // t / h = t * h.recip(), recip = (h.re/d, −h.im/d) with d
            // recomputed from norm_sqr — the same value as csi above.
            let rr = hre / d;
            let ri = (-him) / d;
            or[i] = tre * rr - tim * ri;
            oi[i] = tre * ri + tim * rr;
        } else {
            or[i] = 0.0;
            oi[i] = 0.0;
        }
    }
}

#[inline(always)]
fn convolve_full_impl(
    xr: &[f64],
    xi: &[f64],
    hr: &[f64],
    hi: &[f64],
    yr: &mut [f64],
    yi: &mut [f64],
) {
    let m = hr.len();
    for i in 0..xr.len() {
        let (cr, ci) = (xr[i], xi[i]);
        // Same zero-skip as convolve_direct's `xi == Complex::ZERO`.
        if cr == 0.0 && ci == 0.0 {
            continue;
        }
        axpy_impl(cr, ci, hr, hi, &mut yr[i..i + m], &mut yi[i..i + m]);
    }
}

#[inline(always)]
fn filter_body_impl(
    hr: &[f64],
    hi: &[f64],
    xr: &[f64],
    xi: &[f64],
    yr: &mut [f64],
    yi: &mut [f64],
) {
    let n = xr.len();
    let m = hr.len();
    for i in 0..n {
        let (cr, ci) = (xr[i], xi[i]);
        if cr == 0.0 && ci == 0.0 {
            continue;
        }
        let kmax = m.min(n - i);
        axpy_impl(
            cr,
            ci,
            &hr[..kmax],
            &hi[..kmax],
            &mut yr[i..i + kmax],
            &mut yi[i..i + kmax],
        );
    }
}

#[inline(always)]
fn xcorr_body_impl(xr: &[f64], xi: &[f64], tr: &[f64], ti: &[f64], yr: &mut [f64], yi: &mut [f64]) {
    let lags = yr.len();
    for i in 0..tr.len() {
        // c = conj(template[i]); per-lag accumulation stays in template
        // order, matching xcorr_direct's inner loop, while each pass runs
        // elementwise across all lags.
        axpy_impl(tr[i], -ti[i], &xr[i..i + lags], &xi[i..i + lags], yr, yi);
    }
}

// --------------------------------------------------- AVX2 instantiations ---

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #[target_feature(enable = "avx2")]
    pub unsafe fn magnitude_sqr(re: &[f64], im: &[f64], out: &mut [f64]) {
        super::magnitude_sqr_impl(re, im, out)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn cmul(
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        or: &mut [f64],
        oi: &mut [f64],
    ) {
        super::cmul_impl(ar, ai, br, bi, or, oi)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn cmac(
        ar: &[f64],
        ai: &[f64],
        br: &[f64],
        bi: &[f64],
        or: &mut [f64],
        oi: &mut [f64],
    ) {
        super::cmac_impl(ar, ai, br, bi, or, oi)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn axpy(cre: f64, cim: f64, xr: &[f64], xi: &[f64], yr: &mut [f64], yi: &mut [f64]) {
        super::axpy_impl(cre, cim, xr, xi, yr, yi)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn dist_sqr(pre: f64, pim: f64, cre: &[f64], cim: &[f64], out: &mut [f64]) {
        super::dist_sqr_impl(pre, pim, cre, cim, out)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn masked_min2(dist: &[f64], labels: &[u8], bit: u32) -> (f64, f64) {
        super::masked_min2_impl(dist, labels, bit)
    }
    /// Hand-vectorized fused demapper: four constellation points per
    /// iteration with lane-split min accumulators. Value-identical to
    /// [`super::demap_mins_impl`] because squared distances are never `-0.0`
    /// (each is a sum of self-products), so the min reduction is
    /// reassociation-safe: NaN distances lose on every path, ties are between
    /// bit-identical values, and `vminpd(m, acc)` returns `acc` when `m` is
    /// NaN — exactly `f64::min(acc, m)` for never-NaN `acc`.
    #[target_feature(enable = "avx2")]
    pub unsafe fn demap_mins(
        pre: f64,
        pim: f64,
        cre: &[f64],
        cim: &[f64],
        labels: &[u8],
        nbits: usize,
    ) -> ([f64; 6], [f64; 6]) {
        use std::arch::x86_64::*;
        debug_assert!(cre.len().is_multiple_of(4));
        let n = cre.len();
        let prev = _mm256_set1_pd(pre);
        let pimv = _mm256_set1_pd(pim);
        let infv = _mm256_set1_pd(f64::INFINITY);
        let mut acc0 = [infv; 6];
        let mut acc1 = [infv; 6];
        let mut i = 0usize;
        while i + 4 <= n {
            let cr = _mm256_loadu_pd(cre.as_ptr().add(i));
            let ci = _mm256_loadu_pd(cim.as_ptr().add(i));
            let dr = _mm256_sub_pd(prev, cr);
            let di = _mm256_sub_pd(pimv, ci);
            let d = _mm256_add_pd(_mm256_mul_pd(dr, dr), _mm256_mul_pd(di, di));
            let lv = _mm256_setr_epi64x(
                labels[i] as i64,
                labels[i + 1] as i64,
                labels[i + 2] as i64,
                labels[i + 3] as i64,
            );
            for b in 0..nbits {
                // All-ones where label bit `b` is CLEAR.
                let clear = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
                    _mm256_and_si256(lv, _mm256_set1_epi64x(1i64 << b)),
                    _mm256_setzero_si256(),
                ));
                let m0 = _mm256_blendv_pd(infv, d, clear);
                let m1 = _mm256_blendv_pd(d, infv, clear);
                acc0[b] = _mm256_min_pd(m0, acc0[b]);
                acc1[b] = _mm256_min_pd(m1, acc1[b]);
            }
            i += 4;
        }
        let mut d0 = [f64::INFINITY; 6];
        let mut d1 = [f64::INFINITY; 6];
        let mut lanes = [0.0f64; 4];
        for b in 0..nbits {
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc0[b]);
            d0[b] = lanes[0].min(lanes[1]).min(lanes[2]).min(lanes[3]);
            _mm256_storeu_pd(lanes.as_mut_ptr(), acc1[b]);
            d1[b] = lanes[0].min(lanes[1]).min(lanes[2]).min(lanes[3]);
        }
        (d0, d1)
    }
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn equalize(
        sr: &[f64],
        si: &[f64],
        hr: &[f64],
        hi: &[f64],
        dre: f64,
        dim: f64,
        or: &mut [f64],
        oi: &mut [f64],
        csi: &mut [f64],
    ) {
        super::equalize_impl(sr, si, hr, hi, dre, dim, or, oi, csi)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn convolve_full(
        xr: &[f64],
        xi: &[f64],
        hr: &[f64],
        hi: &[f64],
        yr: &mut [f64],
        yi: &mut [f64],
    ) {
        super::convolve_full_impl(xr, xi, hr, hi, yr, yi)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn filter_body(
        hr: &[f64],
        hi: &[f64],
        xr: &[f64],
        xi: &[f64],
        yr: &mut [f64],
        yi: &mut [f64],
    ) {
        super::filter_body_impl(hr, hi, xr, xi, yr, yi)
    }
    #[target_feature(enable = "avx2")]
    pub unsafe fn xcorr_body(
        xr: &[f64],
        xi: &[f64],
        tr: &[f64],
        ti: &[f64],
        yr: &mut [f64],
        yi: &mut [f64],
    ) {
        super::xcorr_body_impl(xr, xi, tr, ti, yr, yi)
    }
    /// Fused batch demapper over an identity-labeled constellation
    /// (`labels[v] = v`): per equalized point, min squared distance per label
    /// bit and side, then the scaled LLR `(d0 − d1) · csi/nv` written straight
    /// to `out`. Identity labels inside an aligned block of four consecutive
    /// points mean bit 0 follows the fixed lane pattern (0,1,0,1) and bit 1
    /// follows (0,0,1,1) — immediate blends, no label loads — while bits ≥ 2
    /// are constant across the block, so the block's distances feed exactly
    /// one accumulator chosen by a scalar bit test (the other side's
    /// candidates would all be `+inf`, the min identity). Value-identical to
    /// per-point [`demap_mins`] by the same argument documented there: each
    /// `(bit, side)` accumulator mins the same multiset of distances (never
    /// `-0.0`, NaN loses on every path), and min over such a multiset is
    /// order-independent.
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub unsafe fn demap_llrs_batch(
        eq_re: &[f64],
        eq_im: &[f64],
        csi: &[f64],
        nv: f64,
        cre: &[f64],
        cim: &[f64],
        nbits: usize,
        out: &mut [f64],
    ) {
        use std::arch::x86_64::*;
        let n = cre.len();
        debug_assert!(n.is_multiple_of(4) && n >= 8);
        let infv = _mm256_set1_pd(f64::INFINITY);
        for p in 0..eq_re.len() {
            let prev = _mm256_set1_pd(eq_re[p]);
            let pimv = _mm256_set1_pd(eq_im[p]);
            let mut acc0 = [infv; 6];
            let mut acc1 = [infv; 6];
            let mut i = 0usize;
            while i + 4 <= n {
                let cr = _mm256_loadu_pd(cre.as_ptr().add(i));
                let ci = _mm256_loadu_pd(cim.as_ptr().add(i));
                let dr = _mm256_sub_pd(prev, cr);
                let di = _mm256_sub_pd(pimv, ci);
                let d = _mm256_add_pd(_mm256_mul_pd(dr, dr), _mm256_mul_pd(di, di));
                // Labels i..i+3 with i % 4 == 0: bit 0 is set on lanes 1,3
                // and bit 1 on lanes 2,3.
                acc0[0] = _mm256_min_pd(_mm256_blend_pd(d, infv, 0b1010), acc0[0]);
                acc1[0] = _mm256_min_pd(_mm256_blend_pd(infv, d, 0b1010), acc1[0]);
                if nbits >= 2 {
                    acc0[1] = _mm256_min_pd(_mm256_blend_pd(d, infv, 0b1100), acc0[1]);
                    acc1[1] = _mm256_min_pd(_mm256_blend_pd(infv, d, 0b1100), acc1[1]);
                }
                for b in 2..nbits {
                    // Bit `b` of labels i..i+3 equals bit `b` of `i` for the
                    // whole block (i % 4 == 0, lane offset < 4).
                    if (i >> b) & 1 == 0 {
                        acc0[b] = _mm256_min_pd(d, acc0[b]);
                    } else {
                        acc1[b] = _mm256_min_pd(d, acc1[b]);
                    }
                }
                i += 4;
            }
            let scale = csi[p] / nv;
            let mut lanes = [0.0f64; 4];
            for b in 0..nbits {
                _mm256_storeu_pd(lanes.as_mut_ptr(), acc0[b]);
                let d0 = lanes[0].min(lanes[1]).min(lanes[2]).min(lanes[3]);
                _mm256_storeu_pd(lanes.as_mut_ptr(), acc1[b]);
                let d1 = lanes[0].min(lanes[1]).min(lanes[2]).min(lanes[3]);
                out[p * nbits + b] = (d0 - d1) * scale;
            }
        }
    }
}

#[inline]
fn use_avx2() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        backend() == Backend::Avx2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = backend();
        false
    }
}

// ------------------------------------------------------- public dispatch ---

/// Planar `|x|²`: `out[i] = re[i]² + im[i]²` (mirrors `Complex::norm_sqr`).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn magnitude_sqr_planar(re: &[f64], im: &[f64], out: &mut [f64]) {
    assert!(
        re.len() == im.len() && re.len() == out.len(),
        "magnitude_sqr_planar: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        return unsafe { avx2::magnitude_sqr(re, im, out) };
    }
    magnitude_sqr_impl(re, im, out)
}

/// Planar elementwise complex multiply `out = a · b`
/// (mirrors `Complex::mul` per element).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn cmul_planar(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64], or: &mut [f64], oi: &mut [f64]) {
    let n = or.len();
    assert!(
        ar.len() == n && ai.len() == n && br.len() == n && bi.len() == n && oi.len() == n,
        "cmul_planar: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        return unsafe { avx2::cmul(ar, ai, br, bi, or, oi) };
    }
    cmul_impl(ar, ai, br, bi, or, oi)
}

/// Planar elementwise complex multiply-accumulate `out += a · b`.
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn cmac_planar(ar: &[f64], ai: &[f64], br: &[f64], bi: &[f64], or: &mut [f64], oi: &mut [f64]) {
    let n = or.len();
    assert!(
        ar.len() == n && ai.len() == n && br.len() == n && bi.len() == n && oi.len() == n,
        "cmac_planar: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        return unsafe { avx2::cmac(ar, ai, br, bi, or, oi) };
    }
    cmac_impl(ar, ai, br, bi, or, oi)
}

/// Planar scalar-times-vector accumulate `y += c · x` — the FIR inner loop
/// (mirrors `full[i+k] += xi * h[k]` with `Complex::mul(self = c)`).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn axpy_planar(c: Complex, xr: &[f64], xi: &[f64], yr: &mut [f64], yi: &mut [f64]) {
    let n = yr.len();
    assert!(
        xr.len() == n && xi.len() == n && yi.len() == n,
        "axpy_planar: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        return unsafe { avx2::axpy(c.re, c.im, xr, xi, yr, yi) };
    }
    axpy_impl(c.re, c.im, xr, xi, yr, yi)
}

/// Planar squared distances from one point to a constellation:
/// `out[i] = |point − c[i]|²` (mirrors `(point - c[i]).norm_sqr()`).
///
/// # Panics
/// Panics if the slice lengths differ.
pub fn dist_sqr_planar(point: Complex, cre: &[f64], cim: &[f64], out: &mut [f64]) {
    assert!(
        cre.len() == out.len() && cim.len() == out.len(),
        "dist_sqr_planar: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        return unsafe { avx2::dist_sqr(point.re, point.im, cre, cim, out) };
    }
    dist_sqr_impl(point.re, point.im, cre, cim, out)
}

/// Split `dist` into two mins by bit `bit` of each label:
/// `(min over labels with bit clear, min over labels with bit set)` — the
/// max-log demapper inner loop. NaN distances lose (`f64::min` semantics),
/// matching the branchy reference.
///
/// # Panics
/// Panics if `dist` and `labels` lengths differ.
pub fn masked_min2(dist: &[f64], labels: &[u8], bit: u32) -> (f64, f64) {
    assert_eq!(dist.len(), labels.len(), "masked_min2: length mismatch");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        return unsafe { avx2::masked_min2(dist, labels, bit) };
    }
    masked_min2_impl(dist, labels, bit)
}

/// Fused max-log demapper: per label bit `b < nbits`, the minimum squared
/// distance from `point` to the constellation points with bit `b` clear
/// (`.0[b]`) and set (`.1[b]`). One pass over the constellation — equivalent
/// to [`dist_sqr_planar`] followed by per-bit [`masked_min2`], and
/// bit-identical to it: squared distances are non-negative, `+inf`, or NaN
/// (never `-0.0`), so the min reduction order cannot change the result and
/// the lane-split AVX2 path (taken for lane-multiple constellations of ≥ 8
/// points) matches the scalar sequence bitwise.
///
/// # Panics
/// Panics if slice lengths differ or `nbits > 6`.
pub fn demap_mins(
    point: Complex,
    cre: &[f64],
    cim: &[f64],
    labels: &[u8],
    nbits: usize,
) -> ([f64; 6], [f64; 6]) {
    assert!(
        cre.len() == cim.len() && cre.len() == labels.len(),
        "demap_mins: length mismatch"
    );
    assert!(nbits <= 6, "demap_mins: at most 6 bits per symbol");
    #[cfg(target_arch = "x86_64")]
    if use_avx2() && cre.len().is_multiple_of(4) && cre.len() >= 8 {
        // SAFETY: AVX2 presence established by runtime detection.
        return unsafe { avx2::demap_mins(point.re, point.im, cre, cim, labels, nbits) };
    }
    demap_mins_impl(point.re, point.im, cre, cim, labels, nbits)
}

/// Fused batch demapper: max-log LLRs for a whole planar batch of equalized
/// points against one constellation, `out[p·nbits + b] = (d0 − d1) · scale`
/// with `scale = csi[p] / nv`. Labels must be the identity (`labels[v] = v`,
/// true for the cached constellation tables by construction) — that is what
/// lets the AVX2 path replace per-lane label mask arithmetic with immediate
/// blends (bits 0–1 have a fixed lane pattern inside every aligned block of
/// 4 consecutive labels) and whole-block accumulator selects (bits ≥ 2 are
/// constant across such a block). Non-identity labels, short
/// constellations, or `BACKFI_SIMD=off` fall back to the per-point
/// [`demap_mins`] scalar sequence.
///
/// Value-identical to per-point [`demap_mins`] + scale: each `(bit, side)`
/// min reduces the same multiset of squared distances, which are never
/// `-0.0` (sums of self-products), so the reduction order cannot change the
/// result; NaN distances lose on every path (`vminpd(d, acc)` returns `acc`
/// when `d` is NaN — exactly `f64::min(acc, d)` for never-NaN `acc`).
///
/// # Panics
/// Panics if planar slice lengths differ or `nbits > 6`.
#[allow(clippy::too_many_arguments)]
pub fn demap_llrs_batch(
    eq_re: &[f64],
    eq_im: &[f64],
    csi: &[f64],
    nv: f64,
    cre: &[f64],
    cim: &[f64],
    labels: &[u8],
    nbits: usize,
    out: &mut Vec<f64>,
) {
    assert!(
        eq_re.len() == eq_im.len() && eq_re.len() == csi.len(),
        "demap_llrs_batch: point length mismatch"
    );
    assert!(
        cre.len() == cim.len() && cre.len() == labels.len(),
        "demap_llrs_batch: table length mismatch"
    );
    assert!(nbits <= 6, "demap_llrs_batch: at most 6 bits per symbol");
    let start = out.len();
    out.resize(start + eq_re.len() * nbits, 0.0);
    let dst = &mut out[start..];
    #[cfg(target_arch = "x86_64")]
    if use_avx2()
        && cre.len().is_multiple_of(4)
        && cre.len() >= 8
        && labels.iter().enumerate().all(|(v, &l)| l as usize == v)
    {
        // SAFETY: AVX2 presence established by runtime detection.
        unsafe { avx2::demap_llrs_batch(eq_re, eq_im, csi, nv, cre, cim, nbits, dst) };
        return;
    }
    for p in 0..eq_re.len() {
        let (d0, d1) = demap_mins_impl(eq_re[p], eq_im[p], cre, cim, labels, nbits);
        let scale = csi[p] / nv;
        for b in 0..nbits {
            dst[p * nbits + b] = (d0[b] - d1[b]) * scale;
        }
    }
}

/// Planar per-subcarrier equalization: for each `i`,
/// `csi[i] = |h[i]|²` and `out[i] = (sym[i] · derot) / h[i]` when
/// `csi[i] > 1e-15`, else zero — the exact expression sequence of the AoS
/// receiver loop (`Complex::mul` then `Complex::div` via `recip`).
///
/// # Panics
/// Panics if the slice lengths differ.
#[allow(clippy::too_many_arguments)]
pub fn equalize_planar(
    sym_re: &[f64],
    sym_im: &[f64],
    h_re: &[f64],
    h_im: &[f64],
    derot: Complex,
    out_re: &mut [f64],
    out_im: &mut [f64],
    csi: &mut [f64],
) {
    let n = out_re.len();
    assert!(
        sym_re.len() == n
            && sym_im.len() == n
            && h_re.len() == n
            && h_im.len() == n
            && out_im.len() == n
            && csi.len() == n,
        "equalize_planar: length mismatch"
    );
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        return unsafe {
            avx2::equalize(
                sym_re, sym_im, h_re, h_im, derot.re, derot.im, out_re, out_im, csi,
            )
        };
    }
    equalize_impl(
        sym_re, sym_im, h_re, h_im, derot.re, derot.im, out_re, out_im, csi,
    )
}

/// Planar full linear convolution (`x.len() + h.len() − 1` outputs),
/// bit-identical to [`crate::fir::convolve_direct`] in `Full` mode.
///
/// # Panics
/// Panics if either input is empty.
pub fn convolve_full_planar(
    xr: &[f64],
    xi: &[f64],
    hr: &[f64],
    hi: &[f64],
) -> (Vec<f64>, Vec<f64>) {
    assert!(!xr.is_empty() && !hr.is_empty(), "convolve: empty input");
    assert!(
        xr.len() == xi.len() && hr.len() == hi.len(),
        "convolve_full_planar: re/im length mismatch"
    );
    let out_len = xr.len() + hr.len() - 1;
    let mut yr = vec![0.0; out_len];
    let mut yi = vec![0.0; out_len];
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        unsafe { avx2::convolve_full(xr, xi, hr, hi, &mut yr, &mut yi) };
        return (yr, yi);
    }
    convolve_full_impl(xr, xi, hr, hi, &mut yr, &mut yi);
    (yr, yi)
}

/// Planar causal FIR (`x.len()` outputs), bit-identical to
/// [`crate::fir::filter_direct`].
///
/// # Panics
/// Panics if `h` is empty.
pub fn filter_planar(hr: &[f64], hi: &[f64], xr: &[f64], xi: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert!(!hr.is_empty(), "filter: empty impulse response");
    assert!(
        xr.len() == xi.len() && hr.len() == hi.len(),
        "filter_planar: re/im length mismatch"
    );
    let mut yr = vec![0.0; xr.len()];
    let mut yi = vec![0.0; xr.len()];
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        unsafe { avx2::filter_body(hr, hi, xr, xi, &mut yr, &mut yi) };
        return (yr, yi);
    }
    filter_body_impl(hr, hi, xr, xi, &mut yr, &mut yi);
    (yr, yi)
}

/// Planar sliding cross-correlation (`x.len() − t.len() + 1` lags),
/// bit-identical to [`crate::correlate::xcorr_direct`]: per lag, the
/// template sum runs in template order; across lags the update is
/// elementwise.
///
/// # Panics
/// Panics if the template is empty or longer than the signal.
pub fn xcorr_planar(xr: &[f64], xi: &[f64], tr: &[f64], ti: &[f64]) -> (Vec<f64>, Vec<f64>) {
    assert!(!tr.is_empty(), "xcorr: empty template");
    assert!(tr.len() <= xr.len(), "xcorr: template longer than signal");
    assert!(
        xr.len() == xi.len() && tr.len() == ti.len(),
        "xcorr_planar: re/im length mismatch"
    );
    let lags = xr.len() - tr.len() + 1;
    let mut yr = vec![0.0; lags];
    let mut yi = vec![0.0; lags];
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 presence established by runtime detection.
        unsafe { avx2::xcorr_body(xr, xi, tr, ti, &mut yr, &mut yi) };
        return (yr, yi);
    }
    xcorr_body_impl(xr, xi, tr, ti, &mut yr, &mut yi);
    (yr, yi)
}

// ----------------------------------------------------------- AoS wrappers --

/// AoS-in/AoS-out wrapper over [`convolve_full_planar`] (splits, runs the
/// planar kernel, merges). Bit-identical to
/// [`crate::fir::convolve_direct`] in `Full` mode.
///
/// # Panics
/// Panics if either input is empty.
pub fn convolve_full_soa(x: &[Complex], h: &[Complex]) -> Vec<Complex> {
    let (xr, xi) = split(x);
    let (hr, hi) = split(h);
    let (yr, yi) = convolve_full_planar(&xr, &xi, &hr, &hi);
    merge(&yr, &yi)
}

/// AoS-in/AoS-out wrapper over [`filter_planar`]. Bit-identical to
/// [`crate::fir::filter_direct`].
///
/// # Panics
/// Panics if `h` is empty.
pub fn filter_soa(h: &[Complex], x: &[Complex]) -> Vec<Complex> {
    let (hr, hi) = split(h);
    let (xr, xi) = split(x);
    let (yr, yi) = filter_planar(&hr, &hi, &xr, &xi);
    merge(&yr, &yi)
}

/// AoS-in/AoS-out wrapper over [`xcorr_planar`]. Bit-identical to
/// [`crate::correlate::xcorr_direct`].
///
/// # Panics
/// Panics if the template is empty or longer than the signal.
pub fn xcorr_soa(x: &[Complex], template: &[Complex]) -> Vec<Complex> {
    let (xr, xi) = split(x);
    let (tr, ti) = split(template);
    let (yr, yi) = xcorr_planar(&xr, &xi, &tr, &ti);
    merge(&yr, &yi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::cgauss_vec;
    use crate::rng::SplitMix64;
    use crate::simd::force_scalar;

    /// Bitwise equality, except NaN==NaN regardless of sign/payload (Rust
    /// leaves NaN bits unspecified across codegen — see the module docs).
    fn f64_eq(a: f64, b: f64) -> bool {
        a.to_bits() == b.to_bits() || (a.is_nan() && b.is_nan())
    }

    fn assert_f64_eq(a: f64, b: f64, what: &str) {
        assert!(
            f64_eq(a, b),
            "{what}: {a:?} ({:#x}) vs {b:?} ({:#x})",
            a.to_bits(),
            b.to_bits()
        );
    }

    fn assert_bits_eq(a: &[Complex], b: &[Complex], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_f64_eq(x.re, y.re, &format!("{what}: re[{i}]"));
            assert_f64_eq(x.im, y.im, &format!("{what}: im[{i}]"));
        }
    }

    /// Seeded signal with NaN/Inf/denormal/zero lanes mixed in, at a length
    /// that is not a multiple of any SIMD lane width.
    fn hostile(seed: u64, n: usize) -> Vec<Complex> {
        let mut rng = SplitMix64::new(seed);
        let mut v = cgauss_vec(&mut rng, n, 1.0);
        if n >= 8 {
            v[1] = Complex::new(f64::NAN, 0.3);
            v[3] = Complex::new(f64::INFINITY, -1.0);
            v[4] = Complex::new(-2.0, f64::NEG_INFINITY);
            v[5] = Complex::new(5e-324, -5e-324); // denormal
            v[6] = Complex::ZERO;
            v[7] = Complex::new(-0.0, 0.0);
        }
        v
    }

    #[test]
    fn split_merge_roundtrip() {
        let x = hostile(10, 13);
        let (re, im) = split(&x);
        assert_bits_eq(&merge(&re, &im), &x, "roundtrip");
        let mut re2 = vec![0.0; 13];
        let mut im2 = vec![0.0; 13];
        split_into(&x, &mut re2, &mut im2);
        let mut back = vec![Complex::ZERO; 13];
        merge_into(&re2, &im2, &mut back);
        assert_bits_eq(&back, &x, "into roundtrip");
    }

    #[test]
    fn magnitude_sqr_equiv() {
        for n in [1usize, 7, 8, 33, 100] {
            let x = hostile(20 + n as u64, n);
            let (re, im) = split(&x);
            let mut out = vec![0.0; n];
            magnitude_sqr_planar(&re, &im, &mut out);
            for i in 0..n {
                assert_f64_eq(out[i], x[i].norm_sqr(), &format!("n={n} i={i}"));
            }
        }
    }

    #[test]
    fn cmul_cmac_axpy_equiv() {
        for n in [1usize, 5, 16, 37] {
            let a = hostile(30 + n as u64, n);
            let b = hostile(40 + n as u64, n);
            let (ar, ai) = split(&a);
            let (br, bi) = split(&b);
            let mut or = vec![0.0; n];
            let mut oi = vec![0.0; n];
            cmul_planar(&ar, &ai, &br, &bi, &mut or, &mut oi);
            let want: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x * *y).collect();
            assert_bits_eq(&merge(&or, &oi), &want, "cmul");

            // cmac on top of a seeded accumulator
            let acc0 = hostile(50 + n as u64, n);
            let (mut cr, mut ci) = split(&acc0);
            cmac_planar(&ar, &ai, &br, &bi, &mut cr, &mut ci);
            let want2: Vec<Complex> = acc0
                .iter()
                .zip(a.iter().zip(&b))
                .map(|(acc, (x, y))| *acc + *x * *y)
                .collect();
            assert_bits_eq(&merge(&cr, &ci), &want2, "cmac");

            // axpy with a hostile scalar
            let c = Complex::new(0.75, f64::MIN_POSITIVE);
            let (mut yr, mut yi) = split(&acc0);
            axpy_planar(c, &ar, &ai, &mut yr, &mut yi);
            let want3: Vec<Complex> = acc0.iter().zip(&a).map(|(y, x)| *y + c * *x).collect();
            assert_bits_eq(&merge(&yr, &yi), &want3, "axpy");
        }
    }

    #[test]
    fn dist_and_min2_equiv() {
        let pts = hostile(60, 9);
        let (cre, cim) = split(&pts);
        let labels: Vec<u8> = (0..9u8).collect();
        let point = Complex::new(0.4, -1.2);
        let mut dist = vec![0.0; 9];
        dist_sqr_planar(point, &cre, &cim, &mut dist);
        for (i, d) in dist.iter().enumerate() {
            assert_f64_eq(*d, (point - pts[i]).norm_sqr(), &format!("dist[{i}]"));
        }
        for bit in 0..4u32 {
            let (d0, d1) = masked_min2(&dist, &labels, bit);
            // branchy reference
            let mut r0 = f64::INFINITY;
            let mut r1 = f64::INFINITY;
            for (i, d) in dist.iter().enumerate() {
                if (labels[i] >> bit) & 1 == 1 {
                    r1 = r1.min(*d);
                } else {
                    r0 = r0.min(*d);
                }
            }
            assert_f64_eq(d0, r0, &format!("bit {bit} d0"));
            assert_f64_eq(d1, r1, &format!("bit {bit} d1"));
        }
    }

    #[test]
    fn demap_mins_equiv() {
        // Constellation sizes exercising both the lane-multiple AVX2 path
        // (16, 64) and the scalar path (2, 4, 9); hostile constellation
        // entries and points so distances include NaN/+inf lanes.
        for (n, nbits) in [(2usize, 1usize), (4, 2), (9, 4), (16, 4), (64, 6)] {
            let pts = hostile(61 + n as u64, n);
            let (cre, cim) = split(&pts);
            let labels: Vec<u8> = (0..n as u8).collect();
            for point in [
                Complex::new(0.4, -1.2),
                Complex::new(f64::NAN, 0.0),
                Complex::new(f64::INFINITY, -2.0),
            ] {
                let (d0, d1) = demap_mins(point, &cre, &cim, &labels, nbits);
                // Reference: unfused dist scan then per-bit masked min.
                let mut dist = vec![0.0; n];
                dist_sqr_planar(point, &cre, &cim, &mut dist);
                for bit in 0..nbits {
                    let (r0, r1) = masked_min2(&dist, &labels, bit as u32);
                    assert_f64_eq(d0[bit], r0, &format!("n {n} bit {bit} d0"));
                    assert_f64_eq(d1[bit], r1, &format!("n {n} bit {bit} d1"));
                }
                // Fused scalar body matches the dispatcher output bitwise.
                let (s0, s1) = demap_mins_impl(point.re, point.im, &cre, &cim, &labels, nbits);
                for bit in 0..nbits {
                    assert_f64_eq(d0[bit], s0[bit], &format!("n {n} bit {bit} scalar d0"));
                    assert_f64_eq(d1[bit], s1[bit], &format!("n {n} bit {bit} scalar d1"));
                }
            }
        }
    }

    #[test]
    fn equalize_equiv() {
        let sym = hostile(70, 11);
        let mut h = hostile(80, 11);
        h[2] = Complex::new(1e-9, -1e-9); // tiny but above the floor
        h[9] = Complex::ZERO; // below the csi floor -> zero output
        let derot = Complex::exp_j(-0.37);
        let (sr, si) = split(&sym);
        let (hr, hi) = split(&h);
        let mut or = vec![0.0; 11];
        let mut oi = vec![0.0; 11];
        let mut csi = vec![0.0; 11];
        equalize_planar(&sr, &si, &hr, &hi, derot, &mut or, &mut oi, &mut csi);
        for i in 0..11 {
            let want_csi = h[i].norm_sqr();
            let want = if want_csi > 1e-15 {
                (sym[i] * derot) / h[i]
            } else {
                Complex::ZERO
            };
            assert_f64_eq(csi[i], want_csi, &format!("csi[{i}]"));
            assert_f64_eq(or[i], want.re, &format!("eq re[{i}]"));
            assert_f64_eq(oi[i], want.im, &format!("eq im[{i}]"));
        }
    }

    #[test]
    fn convolve_filter_xcorr_equiv_direct() {
        use crate::correlate::xcorr_direct;
        use crate::fir::{convolve_direct, filter_direct, ConvMode};
        for (n, m) in [(9usize, 3usize), (50, 7), (129, 31), (300, 28)] {
            let x = hostile(100 + n as u64, n);
            let h = hostile(200 + m as u64, m);
            assert_bits_eq(
                &convolve_full_soa(&x, &h),
                &convolve_direct(&x, &h, ConvMode::Full),
                "convolve",
            );
            assert_bits_eq(&filter_soa(&h, &x), &filter_direct(&h, &x), "filter");
            assert_bits_eq(&xcorr_soa(&x, &h), &xcorr_direct(&x, &h), "xcorr");
        }
    }

    #[test]
    fn forced_scalar_matches_native_bitwise() {
        let x = hostile(300, 257);
        let h = hostile(301, 29);
        let native = convolve_full_soa(&x, &h);
        let native_x = xcorr_soa(&x, &h);
        force_scalar(true);
        let scalar = convolve_full_soa(&x, &h);
        let scalar_x = xcorr_soa(&x, &h);
        force_scalar(false);
        assert_bits_eq(&native, &scalar, "convolve scalar-vs-native");
        assert_bits_eq(&native_x, &scalar_x, "xcorr scalar-vs-native");
    }
}
