//! FIR filtering and linear convolution.
//!
//! Channels in this workspace (the environmental self-interference path
//! `h_env`, the forward/backward tag channels `h_f`, `h_b`, and the cancelling
//! filters) are all modelled as complex FIR impulse responses, so linear
//! convolution is the single most-used kernel in the simulator.

use crate::Complex;

/// Convolution output-length mode, mirroring NumPy's `mode` argument.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConvMode {
    /// Full convolution, output length `n + m − 1`.
    Full,
    /// Central part, output length `max(n, m)`.
    Same,
    /// Only samples where the signals fully overlap, length `max(n,m) − min(n,m) + 1`.
    Valid,
}

/// Size crossover for the FFT convolution path: both operands must have at
/// least this many samples. Below it the direct form's lower constant wins,
/// and — just as importantly — every short-channel operation in the link
/// pipeline (all impulse responses are ≲ 32 taps) keeps its exact
/// bit-for-bit direct-form arithmetic, so sweep outputs are unchanged.
///
/// Tuned on the fig-grid host (measurements in DESIGN.md §8): with a
/// ≥48-tap kernel the FFT path already wins ~2–3× at the product floor and
/// the gap widens with length (8.3× at 8192×256, ~15× at 16384×512).
pub const FFT_MIN_KERNEL: usize = 48;

/// Size crossover for the FFT convolution path: the signal×kernel product
/// must reach this many multiply-accumulates before the overlap-save
/// machinery (plan lookup, padded blocks, three transforms per block) pays
/// for itself. Measured break-even is near 2¹⁶; the floor sits one power of
/// two above it so everything the link pipeline convolves stays on the
/// bit-exact direct path. `64 taps × 2048 samples` sits right at this
/// boundary.
pub const FFT_MIN_PRODUCT: usize = 1 << 17;

/// True when an (n-sample × m-tap) product should take the FFT path: both
/// operands reach [`FFT_MIN_KERNEL`] **and** the product reaches
/// [`FFT_MIN_PRODUCT`]. Public so the crossover boundary is testable
/// exactly at ±1 around both thresholds.
#[inline]
pub fn use_fft(n: usize, m: usize) -> bool {
    n.min(m) >= FFT_MIN_KERNEL && n.saturating_mul(m) >= FFT_MIN_PRODUCT
}

/// Below this signal×kernel product the AoS direct loop wins (the planar
/// SoA form pays two O(n) layout conversions); at or above it the
/// direct-path work routes through [`crate::soa`]. The two forms are
/// bit-identical (see `soa`'s module docs), so this threshold is purely a
/// performance knob — it cannot change any output.
pub const SOA_MIN_PRODUCT: usize = 4096;

/// Minimum kernel length for the planar SoA filter/convolve branch. Short
/// kernels amortize the two O(n) layout conversions over too few
/// multiply-accumulates per sample: measured on the reference machine, the
/// AoS direct loop beats the planar form ~4× at 2 taps and is still ~20%
/// ahead at 24 taps, with the crossover near 32 (the FFT path takes over at
/// [`FFT_MIN_KERNEL`] = 48 anyway). Like [`SOA_MIN_PRODUCT`] this is purely
/// a performance knob — both forms are bit-identical.
pub const SOA_MIN_TAPS: usize = 32;

/// Minimum kernel length for the AVX2 scatter-AXPY direct path. At or above
/// it each input sample updates enough outputs to amortize the vector
/// setup; below (measured: 2-tap ties, 6-tap loses ~30%, 8-tap ties,
/// 16-tap wins 1.3×, 24-tap 1.6×, 47-tap 2×) the scalar loop's shorter
/// dependency chains win. Purely a performance knob — the vector form is
/// bit-identical (see [`avx2`]).
pub const AXPY_MIN_TAPS: usize = 8;

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! AVX2 scatter form of the direct FIR: for one nonzero input `xi`,
    //! `y[k] += xi · h[k]` across the taps, two complex lanes per vector.
    //!
    //! **Bit-identical to the scalar loop**: the vector runs across
    //! independent *outputs* — each `y[k]` still receives exactly one
    //! `fl(fl(xi·h[k]) + y[k])` with the operand order of `Complex`'s
    //! `mul`/`add` (`re = xr·hr − xv·hi`, `im = xr·hi + xv·hr` up to bitwise
    //! multiplication commutativity), so no float operation is reordered or
    //! fused. The zero-input skip lives in the caller, unchanged.
    use super::Complex;
    use core::arch::x86_64::*;

    /// `y[k] += xi · h[k]` for `k < m`, with `hs` the re/im-swapped copy of
    /// `h`. Pointers address interleaved `[re, im]` f64 pairs (`Complex` is
    /// `repr(C)`); `y` must have at least `m` complex lanes.
    ///
    /// # Safety
    /// Caller must have verified AVX2 support and the lengths above.
    #[target_feature(enable = "avx2")]
    pub unsafe fn scatter_axpy(y: *mut f64, h: *const f64, hs: *const f64, m: usize, xi: Complex) {
        let xr = _mm256_set1_pd(xi.re);
        let xv = _mm256_set1_pd(xi.im);
        let mut k = 0usize;
        while k + 4 <= m {
            let h0 = _mm256_loadu_pd(h.add(2 * k));
            let h1 = _mm256_loadu_pd(h.add(2 * k + 4));
            let s0 = _mm256_loadu_pd(hs.add(2 * k));
            let s1 = _mm256_loadu_pd(hs.add(2 * k + 4));
            // addsub: even lanes subtract, odd lanes add —
            // (hr·xr − hi·xv, hi·xr + hr·xv) = xi · h per complex lane.
            let p0 = _mm256_addsub_pd(_mm256_mul_pd(h0, xr), _mm256_mul_pd(s0, xv));
            let p1 = _mm256_addsub_pd(_mm256_mul_pd(h1, xr), _mm256_mul_pd(s1, xv));
            let y0 = _mm256_loadu_pd(y.add(2 * k));
            let y1 = _mm256_loadu_pd(y.add(2 * k + 4));
            _mm256_storeu_pd(y.add(2 * k), _mm256_add_pd(y0, p0));
            _mm256_storeu_pd(y.add(2 * k + 4), _mm256_add_pd(y1, p1));
            k += 4;
        }
        if k + 2 <= m {
            let h0 = _mm256_loadu_pd(h.add(2 * k));
            let s0 = _mm256_loadu_pd(hs.add(2 * k));
            let p0 = _mm256_addsub_pd(_mm256_mul_pd(h0, xr), _mm256_mul_pd(s0, xv));
            let y0 = _mm256_loadu_pd(y.add(2 * k));
            _mm256_storeu_pd(y.add(2 * k), _mm256_add_pd(y0, p0));
            k += 2;
        }
        if k < m {
            let yk = y.add(2 * k);
            let hr = *h.add(2 * k);
            let hi = *h.add(2 * k + 1);
            *yk += xi.re * hr - xi.im * hi;
            *yk.add(1) += xi.re * hi + xi.im * hr;
        }
    }

    /// Re/im-swapped copy of the taps, hoisting the lane shuffle out of the
    /// per-input hot loop.
    pub fn swapped(h: &[Complex]) -> Vec<f64> {
        let mut hs = Vec::with_capacity(2 * h.len());
        for t in h {
            hs.push(t.im);
            hs.push(t.re);
        }
        hs
    }
}

/// AVX2 scatter-form [`filter_direct`]: identical outer structure (input
/// scan with the zero skip, truncated tail), inner tap loop vectorized two
/// complex lanes at a time. Bit-identical to the scalar form.
#[cfg(target_arch = "x86_64")]
fn filter_axpy_avx2(h: &[Complex], x: &[Complex]) -> Vec<Complex> {
    let mut y = vec![Complex::ZERO; x.len()];
    let hs = avx2::swapped(h);
    let hp = h.as_ptr() as *const f64;
    let yp = y.as_mut_ptr() as *mut f64;
    for (i, &xi) in x.iter().enumerate() {
        if xi == Complex::ZERO {
            continue;
        }
        let kmax = h.len().min(x.len() - i);
        // Safety: AVX2 checked by the caller; y[i..i+kmax] stays in bounds.
        unsafe { avx2::scatter_axpy(yp.add(2 * i), hp, hs.as_ptr(), kmax, xi) };
    }
    y
}

/// Slice a full convolution down to the requested [`ConvMode`].
fn apply_mode(full: Vec<Complex>, n: usize, m: usize, mode: ConvMode) -> Vec<Complex> {
    let full_len = n + m - 1;
    debug_assert_eq!(full.len(), full_len);
    match mode {
        ConvMode::Full => full,
        ConvMode::Same => {
            let out_len = n.max(m);
            let start = (full_len - out_len) / 2;
            full[start..start + out_len].to_vec()
        }
        ConvMode::Valid => {
            let out_len = n.max(m) - n.min(m) + 1;
            let start = n.min(m) - 1;
            full[start..start + out_len].to_vec()
        }
    }
}

/// Linear convolution of `x` with `h`.
///
/// Dispatches on operand sizes: short products (channel impulse responses
/// here are ≲ 32 taps) use the direct O(n·m) form, long ones the
/// overlap-save FFT path in [`crate::fastconv`] (O(n·log m), identical
/// within float rounding). The crossover is [`FFT_MIN_KERNEL`] taps and
/// [`FFT_MIN_PRODUCT`] multiply-accumulates.
///
/// # Panics
/// Panics if either input is empty.
pub fn convolve(x: &[Complex], h: &[Complex], mode: ConvMode) -> Vec<Complex> {
    assert!(!x.is_empty() && !h.is_empty(), "convolve: empty input");
    if use_fft(x.len(), h.len()) {
        apply_mode(
            crate::fastconv::convolve_full_fft(x, h),
            x.len(),
            h.len(),
            mode,
        )
    } else if h.len() >= SOA_MIN_TAPS && x.len().saturating_mul(h.len()) >= SOA_MIN_PRODUCT {
        // Bit-identical to convolve_direct, vectorized planar form.
        apply_mode(crate::soa::convolve_full_soa(x, h), x.len(), h.len(), mode)
    } else {
        convolve_direct(x, h, mode)
    }
}

/// The direct O(n·m) convolution form, bypassing the size dispatch of
/// [`convolve`]. Reference implementation for the equivalence tests and the
/// before/after kernel benches.
///
/// # Panics
/// Panics if either input is empty.
pub fn convolve_direct(x: &[Complex], h: &[Complex], mode: ConvMode) -> Vec<Complex> {
    assert!(!x.is_empty() && !h.is_empty(), "convolve: empty input");
    let n = x.len();
    let m = h.len();
    let mut full = vec![Complex::ZERO; n + m - 1];
    for (i, &xi) in x.iter().enumerate() {
        if xi == Complex::ZERO {
            continue;
        }
        for (k, &hk) in h.iter().enumerate() {
            full[i + k] += xi * hk;
        }
    }
    apply_mode(full, n, m, mode)
}

/// Causal FIR application: `y[i] = Σ_k h[k] x[i−k]`, with `x[j]=0` for `j<0`,
/// output the same length as `x`. This is the "signal goes through a channel"
/// operation — the convolution tail beyond the input length is dropped.
///
/// Dispatches to the overlap-save FFT path for long filter×signal products,
/// like [`convolve`].
pub fn filter(h: &[Complex], x: &[Complex]) -> Vec<Complex> {
    assert!(!h.is_empty(), "filter: empty impulse response");
    if use_fft(x.len(), h.len()) {
        crate::fastconv::filter_fft(h, x)
    } else {
        #[cfg(target_arch = "x86_64")]
        if crate::simd::backend() == crate::simd::Backend::Avx2 && h.len() >= AXPY_MIN_TAPS {
            // Bit-identical to filter_direct, vectorized scatter form.
            return filter_axpy_avx2(h, x);
        }
        if h.len() >= SOA_MIN_TAPS && x.len().saturating_mul(h.len()) >= SOA_MIN_PRODUCT {
            // Bit-identical to filter_direct, vectorized planar form.
            crate::soa::filter_soa(h, x)
        } else {
            filter_direct(h, x)
        }
    }
}

/// The direct O(n·m) form of [`filter`], bypassing the size dispatch.
/// Reference implementation for the equivalence tests and benches.
///
/// # Panics
/// Panics if `h` is empty.
pub fn filter_direct(h: &[Complex], x: &[Complex]) -> Vec<Complex> {
    assert!(!h.is_empty(), "filter: empty impulse response");
    let mut y = vec![Complex::ZERO; x.len()];
    for (i, &xi) in x.iter().enumerate() {
        if xi == Complex::ZERO {
            continue;
        }
        let kmax = h.len().min(x.len() - i);
        for k in 0..kmax {
            y[i + k] += xi * h[k];
        }
    }
    y
}

/// A stateful streaming FIR filter.
///
/// Keeps a delay line between calls so a long signal can be filtered in
/// chunks — used by the receiver front end and the digital canceller, which
/// process the packet as it "arrives".
#[derive(Clone, Debug)]
pub struct FirFilter {
    taps: Vec<Complex>,
    /// Circular delay line holding the most recent `taps.len()−1` inputs.
    state: Vec<Complex>,
    pos: usize,
}

impl FirFilter {
    /// Create a streaming filter with the given taps (`taps[0]` is the
    /// zero-delay tap).
    ///
    /// # Panics
    /// Panics if `taps` is empty.
    pub fn new(taps: Vec<Complex>) -> Self {
        assert!(!taps.is_empty(), "FirFilter: empty taps");
        let len = taps.len();
        FirFilter {
            taps,
            state: vec![Complex::ZERO; len],
            pos: 0,
        }
    }

    /// Number of taps.
    pub fn order(&self) -> usize {
        self.taps.len()
    }

    /// Borrow the taps.
    pub fn taps(&self) -> &[Complex] {
        &self.taps
    }

    /// Reset the delay line to zeros.
    pub fn reset(&mut self) {
        self.state.iter_mut().for_each(|v| *v = Complex::ZERO);
        self.pos = 0;
    }

    /// Push one sample, get one output sample.
    #[inline]
    pub fn push(&mut self, x: Complex) -> Complex {
        let n = self.state.len();
        self.state[self.pos] = x;
        let mut acc = Complex::ZERO;
        let mut idx = self.pos;
        for &t in &self.taps {
            acc += t * self.state[idx];
            idx = if idx == 0 { n - 1 } else { idx - 1 };
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Filter a whole block, preserving state across calls.
    pub fn process(&mut self, x: &[Complex]) -> Vec<Complex> {
        x.iter().map(|&v| self.push(v)).collect()
    }
}

/// Design a real lowpass FIR by the windowed-sinc method.
///
/// `cutoff` is the normalized cutoff in cycles/sample (0 < cutoff < 0.5);
/// `ntaps` should be odd for a symmetric (linear-phase) filter. Returns real
/// taps as `Complex` with zero imaginary parts, normalized to unit DC gain.
///
/// # Panics
/// Panics if `cutoff` is outside (0, 0.5) or `ntaps == 0`.
pub fn lowpass_taps(ntaps: usize, cutoff: f64) -> Vec<Complex> {
    assert!(ntaps > 0, "lowpass_taps: ntaps must be positive");
    assert!(cutoff > 0.0 && cutoff < 0.5, "cutoff must lie in (0, 0.5)");
    let mid = (ntaps as f64 - 1.0) / 2.0;
    let mut taps: Vec<f64> = (0..ntaps)
        .map(|i| {
            let t = i as f64 - mid;
            let sinc = if t.abs() < 1e-12 {
                2.0 * cutoff
            } else {
                (2.0 * std::f64::consts::PI * cutoff * t).sin() / (std::f64::consts::PI * t)
            };
            // Hamming window
            let w = 0.54
                - 0.46
                    * (2.0 * std::f64::consts::PI * i as f64 / (ntaps as f64 - 1.0).max(1.0)).cos();
            sinc * w
        })
        .collect();
    let sum: f64 = taps.iter().sum();
    taps.iter_mut().for_each(|t| *t /= sum);
    taps.into_iter().map(Complex::real).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64) -> Complex {
        Complex::real(re)
    }

    #[test]
    fn full_convolution_known_answer() {
        let x = [c(1.0), c(2.0), c(3.0)];
        let h = [c(1.0), c(1.0)];
        let y = convolve(&x, &h, ConvMode::Full);
        let expect = [1.0, 3.0, 5.0, 3.0];
        assert_eq!(y.len(), 4);
        for (a, b) in y.iter().zip(expect) {
            assert!((a.re - b).abs() < 1e-12 && a.im.abs() < 1e-12);
        }
    }

    #[test]
    fn same_mode_length() {
        let x = vec![c(1.0); 10];
        let h = vec![c(1.0); 3];
        assert_eq!(convolve(&x, &h, ConvMode::Same).len(), 10);
    }

    #[test]
    fn valid_mode_length() {
        let x = vec![c(1.0); 10];
        let h = vec![c(1.0); 3];
        let y = convolve(&x, &h, ConvMode::Valid);
        assert_eq!(y.len(), 8);
        for v in y {
            assert!((v.re - 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn identity_impulse() {
        let x: Vec<Complex> = (0..20)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let h = [Complex::ONE];
        assert_eq!(filter(&h, &x), x);
    }

    #[test]
    fn delay_impulse() {
        let x: Vec<Complex> = (0..5).map(|i| c(i as f64 + 1.0)).collect();
        let h = [Complex::ZERO, Complex::ONE]; // one-sample delay
        let y = filter(&h, &x);
        assert!((y[0].abs()) < 1e-12);
        for i in 1..5 {
            assert!((y[i] - x[i - 1]).abs() < 1e-12);
        }
    }

    #[test]
    fn filter_matches_truncated_convolution() {
        let x: Vec<Complex> = (0..30)
            .map(|i| Complex::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let h: Vec<Complex> = (0..4)
            .map(|i| Complex::new(0.5f64.powi(i), 0.1 * i as f64))
            .collect();
        let full = convolve(&x, &h, ConvMode::Full);
        let y = filter(&h, &x);
        for i in 0..x.len() {
            assert!((y[i] - full[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn streaming_matches_block() {
        let x: Vec<Complex> = (0..50)
            .map(|i| Complex::new((i as f64 * 0.3).sin(), 0.2))
            .collect();
        let h: Vec<Complex> = vec![c(0.5), c(-0.25), Complex::new(0.0, 0.125)];
        let block = filter(&h, &x);
        let mut f = FirFilter::new(h);
        // process in uneven chunks
        let mut out = Vec::new();
        out.extend(f.process(&x[..7]));
        out.extend(f.process(&x[7..23]));
        out.extend(f.process(&x[23..]));
        for (a, b) in out.iter().zip(&block) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn fir_reset_clears_state() {
        let h: Vec<Complex> = vec![c(1.0), c(1.0)];
        let mut f = FirFilter::new(h);
        f.push(c(5.0));
        f.reset();
        assert!((f.push(c(1.0)) - c(1.0)).abs() < 1e-12);
    }

    #[test]
    fn fft_crossover_boundary_exact() {
        // Documented rule (DESIGN.md §8): FFT path ⇔ min(n,m) ≥ FFT_MIN_KERNEL
        // ∧ n·m ≥ FFT_MIN_PRODUCT. Probe every boundary at ±1.
        assert_eq!(2048 * 64, FFT_MIN_PRODUCT); // the boundary pair below
        assert!(use_fft(2048, 64), "exactly at the product floor");
        assert!(!use_fft(2047, 64), "one sample below the product floor");
        assert!(use_fft(64, 2048), "symmetric in the operands");
        assert!(!use_fft(64, 2047));
        assert!(
            !use_fft(4096, FFT_MIN_KERNEL - 1),
            "kernel one tap short overrides a huge product"
        );
        assert!(use_fft(4096, FFT_MIN_KERNEL));
        assert!(
            !use_fft(FFT_MIN_KERNEL, FFT_MIN_KERNEL),
            "kernel floor alone is not enough"
        );
    }

    #[test]
    fn dispatch_selects_documented_path_bitwise_at_boundary() {
        use crate::noise::cgauss_vec;
        use crate::rng::SplitMix64;
        // At crossover±1 the output must be bit-identical to the path the
        // documented rule names (the SoA route equals convolve_direct
        // bitwise, so the direct-side comparison stays exact).
        for (n, m) in [(2048usize, 64usize), (2047, 64), (4096, 47), (4096, 48)] {
            let mut rng = SplitMix64::new((n * 1000 + m) as u64);
            let x = cgauss_vec(&mut rng, n, 1.0);
            let h = cgauss_vec(&mut rng, m, 1.0);
            let got = convolve(&x, &h, ConvMode::Full);
            let want = if use_fft(n, m) {
                crate::fastconv::convolve_full_fft(&x, &h)
            } else {
                convolve_direct(&x, &h, ConvMode::Full)
            };
            assert_eq!(got.len(), want.len());
            for (i, (a, b)) in got.iter().zip(&want).enumerate() {
                assert_eq!(a.re.to_bits(), b.re.to_bits(), "({n},{m}) re[{i}]");
                assert_eq!(a.im.to_bits(), b.im.to_bits(), "({n},{m}) im[{i}]");
            }
        }
    }

    #[test]
    fn lowpass_dc_gain_is_one() {
        let taps = lowpass_taps(31, 0.2);
        let dc: Complex = taps.iter().sum();
        assert!((dc.re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lowpass_attenuates_high_frequency() {
        let taps = lowpass_taps(63, 0.1);
        // Evaluate frequency response at f = 0.05 (passband) and f = 0.35 (stopband)
        let resp = |f: f64| -> f64 {
            taps.iter()
                .enumerate()
                .map(|(i, t)| *t * Complex::exp_j(-2.0 * std::f64::consts::PI * f * i as f64))
                .sum::<Complex>()
                .abs()
        };
        assert!(resp(0.05) > 0.9);
        assert!(resp(0.35) < 0.01);
    }
}
