//! Power, SNR, and EVM measurement plus dB conversions.
//!
//! The evaluation section of the paper reports everything in dB/dBm, so these
//! helpers are used by every experiment harness. Powers follow the usual
//! baseband convention: the power of a sample block is its mean squared
//! magnitude, and 0 dBm corresponds to power `1.0` in simulator units (the
//! link budget in `backfi-chan` sets absolute scale).

use crate::Complex;

/// Linear power ratio → decibels. Returns `-inf` for zero, NaN for negatives.
#[inline]
pub fn db(lin: f64) -> f64 {
    10.0 * lin.log10()
}

/// Decibels → linear power ratio.
#[inline]
pub fn undb(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Mean power (mean squared magnitude) of a sample block.
/// Returns 0 for an empty block.
pub fn mean_power(x: &[Complex]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64
}

/// Mean power in dB (relative to unit power, i.e. dBm under the simulator's
/// 0 dBm == 1.0 convention).
pub fn mean_power_db(x: &[Complex]) -> f64 {
    db(mean_power(x))
}

/// Peak instantaneous power of a block.
pub fn peak_power(x: &[Complex]) -> f64 {
    x.iter().map(|v| v.norm_sqr()).fold(0.0, f64::max)
}

/// Peak-to-average power ratio in dB. Returns 0 for empty/zero input.
pub fn papr_db(x: &[Complex]) -> f64 {
    let avg = mean_power(x);
    if avg == 0.0 {
        return 0.0;
    }
    db(peak_power(x) / avg)
}

/// Root-mean-square magnitude.
pub fn rms(x: &[Complex]) -> f64 {
    mean_power(x).sqrt()
}

/// Signal-to-noise ratio (dB) given separate signal and error blocks:
/// `10·log10(P_signal / P_error)`.
pub fn snr_db(signal: &[Complex], error: &[Complex]) -> f64 {
    db(mean_power(signal) / mean_power(error))
}

/// Error-vector-magnitude (%) of received constellation points against their
/// ideal decisions: `100 · sqrt(P_err / P_ref)`.
///
/// # Panics
/// Panics if slices differ in length or are empty.
pub fn evm_percent(rx: &[Complex], ideal: &[Complex]) -> f64 {
    assert_eq!(rx.len(), ideal.len(), "evm: length mismatch");
    assert!(!rx.is_empty(), "evm: empty input");
    let perr: f64 = rx
        .iter()
        .zip(ideal)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum();
    let pref: f64 = ideal.iter().map(|v| v.norm_sqr()).sum();
    100.0 * (perr / pref).sqrt()
}

/// Estimate SNR (dB) from EVM-style decision-directed statistics: given
/// received PSK symbols and their sliced ideal values, SNR ≈ P_ref / P_err.
pub fn snr_from_decisions_db(rx: &[Complex], ideal: &[Complex]) -> f64 {
    assert_eq!(rx.len(), ideal.len());
    let perr: f64 = rx
        .iter()
        .zip(ideal)
        .map(|(a, b)| (*a - *b).norm_sqr())
        .sum();
    let pref: f64 = ideal.iter().map(|v| v.norm_sqr()).sum();
    db(pref / perr)
}

/// Arithmetic mean of a real slice (0 for empty).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance of a real slice (0 for empty).
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Median of a real slice (NaN for empty). Sorts a copy; NaNs order last
/// (`total_cmp`), so a NaN-bearing slice yields a defined (if NaN-tainted)
/// result instead of panicking.
pub fn median(x: &[f64]) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    let mut v = x.to_vec();
    v.sort_by(f64::total_cmp);
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) with linear interpolation, NaN for empty.
pub fn quantile(x: &[f64], q: f64) -> f64 {
    if x.is_empty() {
        return f64::NAN;
    }
    let mut v = x.to_vec();
    v.sort_by(f64::total_cmp);
    let pos = q.clamp(0.0, 1.0) * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// An empirical CDF over a set of real observations.
///
/// Used by the Fig. 12a / Fig. 13a harnesses, which report throughput CDFs.
#[derive(Clone, Debug)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from observations (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| !v.is_nan());
        samples.sort_by(f64::total_cmp);
        Ecdf { sorted: samples }
    }

    /// Number of retained observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when no observations were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile) with linear interpolation.
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(&self.sorted, q)
    }

    /// Iterate `(value, cumulative_probability)` points for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(move |(i, &v)| (v, (i + 1) as f64 / n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for &v in &[1e-9, 1.0, 3.5, 1e6] {
            assert!((undb(db(v)) - v).abs() / v < 1e-12);
        }
        assert!((db(10.0) - 10.0).abs() < 1e-12);
        assert!((db(100.0) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn power_of_unit_phasors() {
        let x: Vec<Complex> = (0..100).map(|i| Complex::exp_j(i as f64)).collect();
        assert!((mean_power(&x) - 1.0).abs() < 1e-12);
        assert!(papr_db(&x).abs() < 1e-9);
    }

    #[test]
    fn snr_known_ratio() {
        let s = vec![Complex::real(1.0); 64];
        let e = vec![Complex::real(0.1); 64];
        assert!((snr_db(&s, &e) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn evm_zero_for_perfect() {
        let pts: Vec<Complex> = (0..16).map(|i| Complex::exp_j(i as f64)).collect();
        assert!(evm_percent(&pts, &pts) < 1e-12);
    }

    #[test]
    fn evm_known_error() {
        let ideal = vec![Complex::ONE; 10];
        let rx: Vec<Complex> = ideal.iter().map(|v| *v + Complex::new(0.1, 0.0)).collect();
        assert!((evm_percent(&rx, &ideal) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn median_and_quantile() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert!((median(&v) - 3.0).abs() < 1e-12);
        assert!((quantile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((quantile(&v, 1.0) - 5.0).abs() < 1e-12);
        assert!((quantile(&v, 0.5) - 3.0).abs() < 1e-12);
        let even = [1.0, 2.0, 3.0, 4.0];
        assert!((median(&even) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn variance_known() {
        let v = [1.0, 1.0, 1.0];
        assert!(variance(&v).abs() < 1e-12);
        let w = [0.0, 2.0];
        assert!((variance(&w) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert!((e.eval(0.5) - 0.0).abs() < 1e-12);
        assert!((e.eval(2.0) - 0.5).abs() < 1e-12);
        assert!((e.eval(10.0) - 1.0).abs() < 1e-12);
        assert!((e.quantile(0.5) - 2.5).abs() < 1e-12);
        let pts: Vec<_> = e.points().collect();
        assert_eq!(pts.len(), 4);
        assert!((pts[3].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ecdf_drops_nan() {
        let e = Ecdf::new(vec![f64::NAN, 1.0]);
        assert_eq!(e.len(), 1);
    }
}
