//! Deterministic complex Gaussian noise.
//!
//! Every stochastic element of the simulator (thermal noise, multipath tap
//! realizations, payload bits) is driven by seeded [`crate::rng`] generators
//! so that every figure in EXPERIMENTS.md is exactly reproducible.

use crate::rng::Rng;
use crate::Complex;

/// Draw one circularly-symmetric complex Gaussian sample with total variance
/// `var` (i.e. `var/2` per real component).
#[inline]
pub fn cgauss<R: Rng + ?Sized>(rng: &mut R, var: f64) -> Complex {
    let s = (var / 2.0).sqrt();
    Complex::new(s * gauss(rng), s * gauss(rng))
}

/// Standard normal via Box–Muller (no external distribution crates in the
/// offline build).
#[inline]
pub fn gauss<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0,1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.next_f64();
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// A vector of i.i.d. complex Gaussian samples with total variance `var`.
pub fn cgauss_vec<R: Rng + ?Sized>(rng: &mut R, n: usize, var: f64) -> Vec<Complex> {
    (0..n).map(|_| cgauss(rng, var)).collect()
}

/// Add complex Gaussian noise of power `noise_power` to a signal in place.
pub fn add_noise<R: Rng + ?Sized>(rng: &mut R, x: &mut [Complex], noise_power: f64) {
    if noise_power <= 0.0 {
        return;
    }
    for v in x.iter_mut() {
        *v += cgauss(rng, noise_power);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;
    use crate::stats::mean_power;

    #[test]
    fn noise_power_matches_request() {
        let mut rng = SplitMix64::new(7);
        let v = cgauss_vec(&mut rng, 200_000, 2.5);
        let p = mean_power(&v);
        assert!((p - 2.5).abs() < 0.05, "measured power {p}");
    }

    #[test]
    fn gauss_mean_and_var() {
        let mut rng = SplitMix64::new(42);
        let xs: Vec<f64> = (0..200_000).map(|_| gauss(&mut rng)).collect();
        let m = crate::stats::mean(&xs);
        let v = crate::stats::variance(&xs);
        assert!(m.abs() < 0.01, "mean {m}");
        assert!((v - 1.0).abs() < 0.02, "var {v}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        assert_eq!(cgauss_vec(&mut a, 16, 1.0), cgauss_vec(&mut b, 16, 1.0));
    }

    #[test]
    fn zero_power_noise_is_noop() {
        let mut rng = SplitMix64::new(3);
        let mut x = vec![Complex::ONE; 8];
        add_noise(&mut rng, &mut x, 0.0);
        assert!(x.iter().all(|v| (*v - Complex::ONE).abs() < 1e-15));
    }

    #[test]
    fn add_noise_raises_power() {
        let mut rng = SplitMix64::new(9);
        let mut x = vec![Complex::ZERO; 100_000];
        add_noise(&mut rng, &mut x, 0.7);
        let p = mean_power(&x);
        assert!((p - 0.7).abs() < 0.03, "{p}");
    }
}
