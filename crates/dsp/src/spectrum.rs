//! Power spectral density estimation (Welch's method).
//!
//! Used to sanity-check the simulated waveforms: the 802.11g excitation must
//! occupy its 16.6 MHz of loaded subcarriers and respect the transmit
//! spectral mask, and the tag's backscatter is a spectrum-shifted copy whose
//! occupancy the tests verify.

use crate::fft::FftPlan;
use crate::window::hann;
use crate::Complex;

/// Welch PSD estimate.
///
/// * `x` — input samples,
/// * `nfft` — segment/FFT size (power of two),
/// * `overlap` — fraction of segment overlap in `[0, 0.9]`.
///
/// Returns `nfft` power values (linear, per-bin, DC first — apply
/// [`crate::fft::fftshift`] for a centred spectrum). Normalized so the sum
/// over bins equals the mean power of `x` (Parseval-consistent).
///
/// # Panics
/// Panics if `nfft` is not a power of two or `x.len() < nfft`.
pub fn welch_psd(x: &[Complex], nfft: usize, overlap: f64) -> Vec<f64> {
    assert!(nfft.is_power_of_two(), "nfft must be a power of two");
    assert!(x.len() >= nfft, "signal shorter than one segment");
    let overlap = overlap.clamp(0.0, 0.9);
    let hop = ((nfft as f64) * (1.0 - overlap)).max(1.0) as usize;
    let plan = FftPlan::cached(nfft);
    let win = hann(nfft);
    let win_power: f64 = win.iter().map(|w| w * w).sum::<f64>() / nfft as f64;

    let mut acc = vec![0.0f64; nfft];
    let mut segments = 0usize;
    let mut start = 0usize;
    let mut buf = vec![Complex::ZERO; nfft];
    while start + nfft <= x.len() {
        for (i, b) in buf.iter_mut().enumerate() {
            *b = x[start + i].scale(win[i]);
        }
        plan.forward(&mut buf);
        for (a, v) in acc.iter_mut().zip(&buf) {
            *a += v.norm_sqr();
        }
        segments += 1;
        start += hop;
    }
    let norm = 1.0 / (segments as f64 * nfft as f64 * nfft as f64 * win_power);
    acc.iter_mut().for_each(|a| *a *= norm);
    acc
}

/// Occupied bandwidth: the smallest symmetric-around-peak set of bins holding
/// `fraction` of the total power, expressed in Hz for a given sample rate.
pub fn occupied_bandwidth(psd: &[f64], sample_rate_hz: f64, fraction: f64) -> f64 {
    let total: f64 = psd.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // Sort bins by power (descending), accumulate until the fraction is
    // reached. NaN bins lose: they are keyed as −∞ so they sort last instead
    // of panicking the comparator.
    let desc_key = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
    let mut idx: Vec<usize> = (0..psd.len()).collect();
    idx.sort_by(|&a, &b| desc_key(psd[b]).total_cmp(&desc_key(psd[a])));
    let mut acc = 0.0;
    let mut count = 0usize;
    for &i in &idx {
        acc += psd[i];
        count += 1;
        if acc >= fraction * total {
            break;
        }
    }
    count as f64 * sample_rate_hz / psd.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fftshift;
    use crate::noise::cgauss_vec;
    use crate::rng::SplitMix64;
    use crate::stats::mean_power;

    #[test]
    fn white_noise_is_flat_and_parseval_consistent() {
        let mut rng = SplitMix64::new(1);
        let x = cgauss_vec(&mut rng, 64 * 200, 2.0);
        let psd = welch_psd(&x, 64, 0.5);
        let total: f64 = psd.iter().sum();
        let p = mean_power(&x);
        assert!((total / p - 1.0).abs() < 0.1, "total {total} vs power {p}");
        // Flatness: no bin more than 3x the mean.
        let mean = total / 64.0;
        for (i, v) in psd.iter().enumerate() {
            assert!(*v < mean * 3.0, "bin {i} sticks out");
        }
    }

    #[test]
    fn tone_concentrates_in_one_bin() {
        let f = 5.0 / 64.0; // exactly bin 5
        let x: Vec<Complex> = (0..6400)
            .map(|n| Complex::exp_j(std::f64::consts::TAU * f * n as f64))
            .collect();
        let psd = welch_psd(&x, 64, 0.5);
        let peak = psd
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(peak, 5);
        // ≥80 % of power within the peak ±1 bins (Hann spreads a little).
        let total: f64 = psd.iter().sum();
        let local: f64 = psd[4..=6].iter().sum();
        assert!(local / total > 0.8, "{}", local / total);
    }

    #[test]
    fn occupied_bandwidth_of_a_tone_is_narrow() {
        let x: Vec<Complex> = (0..6400).map(|n| Complex::exp_j(0.7 * n as f64)).collect();
        let psd = welch_psd(&x, 128, 0.5);
        let bw = occupied_bandwidth(&psd, 20e6, 0.9);
        assert!(bw < 1e6, "tone bandwidth {bw}");
    }

    #[test]
    fn fftshift_centres_spectrum() {
        let psd = vec![1.0, 0.0, 0.0, 9.0];
        let centred = fftshift(&psd);
        assert_eq!(centred, vec![0.0, 9.0, 1.0, 0.0]);
    }
}
