//! Iterative radix-2 decimation-in-time FFT.
//!
//! OFDM modulation in `backfi-wifi` needs exactly one transform size (64), but
//! the implementation is generic over any power of two so the channel
//! estimator and spectral tests can use longer transforms.
//!
//! Conventions: [`fft`] computes the unnormalized forward DFT
//! `X[k] = Σ x[n]·e^{-j2πkn/N}`; [`ifft`] computes the inverse with the
//! customary `1/N` normalization so `ifft(fft(x)) == x`.

use crate::Complex;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// A planned FFT of a fixed power-of-two size.
///
/// Planning precomputes the twiddle table and bit-reversal permutation so the
/// per-call cost is the butterflies alone. The plan is immutable and can be
/// shared between threads.
#[derive(Clone, Debug)]
pub struct FftPlan {
    n: usize,
    /// twiddles[k] = e^{-j 2π k / n} for k in 0..n/2
    twiddles: Vec<Complex>,
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Create a plan for size `n`.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(
            n.is_power_of_two() && n > 0,
            "FFT size must be a power of two, got {n}"
        );
        let twiddles = (0..n / 2)
            .map(|k| Complex::exp_j(-2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let bits = n.trailing_zeros();
        let bitrev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        FftPlan {
            n,
            twiddles,
            bitrev,
        }
    }

    /// Fetch (or build and cache) a shared plan for size `n`.
    ///
    /// Planning costs O(n) trigonometry, which dwarfs the butterflies for the
    /// small transforms the convenience wrappers are called with, so plans are
    /// shared process-wide — same pattern as the excitation cache in
    /// `backfi-core`. Callers that transform one size in a tight loop can
    /// still hold a [`FftPlan`] (or this `Arc`) directly and skip the lock.
    ///
    /// # Panics
    /// Panics if `n` is zero or not a power of two.
    pub fn cached(n: usize) -> Arc<FftPlan> {
        /// Distinct sizes alive at once stay tiny (OFDM 64, a few
        /// overlap-save block sizes, Welch segments); the cap only guards
        /// against a pathological caller sweeping sizes forever.
        const CACHE_CAP: usize = 32;
        static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        if let Some(hit) = cache.lock().expect("fft plan cache poisoned").get(&n) {
            return hit.clone();
        }
        // Build outside the lock: concurrent first-builds of one size both
        // compute identical tables, which is deterministic and rare.
        let built = Arc::new(FftPlan::new(n));
        let mut map = cache.lock().expect("fft plan cache poisoned");
        if map.len() >= CACHE_CAP {
            map.clear();
        }
        map.entry(n).or_insert_with(|| built.clone()).clone()
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false: plans have size ≥ 1.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward FFT.
    ///
    /// # Panics
    /// Panics if `buf.len() != self.len()`.
    pub fn forward(&self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer length must equal plan size");
        self.permute(buf);
        self.butterflies(buf, false);
    }

    /// In-place forward FFT of many same-size transforms packed back to
    /// back: `buf` holds `buf.len() / n` contiguous transforms, each
    /// permuted and butterflied with exactly the op sequence of
    /// [`Self::forward`] — bit-identical per transform at every batch size.
    /// One plan invocation amortizes the dispatch and keeps the twiddle and
    /// bit-reversal tables hot across the whole batch (the receive chain
    /// uses this to transform [`crate::soa`]-batched OFDM symbols).
    ///
    /// # Panics
    /// Panics if `buf.len()` is not a multiple of the plan size.
    pub fn forward_many(&self, buf: &mut [Complex]) {
        assert_eq!(
            buf.len() % self.n,
            0,
            "batch buffer must be a multiple of the plan size"
        );
        for chunk in buf.chunks_exact_mut(self.n) {
            self.permute(chunk);
            self.butterflies(chunk, false);
        }
    }

    /// In-place inverse FFT (includes the `1/N` normalization).
    ///
    /// # Panics
    /// Panics if `buf.len() != self.len()`.
    pub fn inverse(&self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer length must equal plan size");
        self.permute(buf);
        self.butterflies(buf, true);
        let scale = 1.0 / self.n as f64;
        for v in buf.iter_mut() {
            *v *= scale;
        }
    }

    fn permute(&self, buf: &mut [Complex]) {
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if j > i {
                buf.swap(i, j);
            }
        }
    }

    fn butterflies(&self, buf: &mut [Complex], inverse: bool) {
        let n = self.n;
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len;
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let a = buf[start + k];
                    let b = buf[start + k + half] * w;
                    buf[start + k] = a + b;
                    buf[start + k + half] = a - b;
                }
            }
            len <<= 1;
        }
    }
}

/// Out-of-place forward FFT convenience wrapper.
///
/// # Panics
/// Panics if `x.len()` is not a power of two.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let plan = FftPlan::cached(x.len());
    let mut buf = x.to_vec();
    plan.forward(&mut buf);
    buf
}

/// Out-of-place inverse FFT convenience wrapper (normalized by `1/N`).
///
/// # Panics
/// Panics if `x.len()` is not a power of two.
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let plan = FftPlan::cached(x.len());
    let mut buf = x.to_vec();
    plan.inverse(&mut buf);
    buf
}

/// Swap the two halves of a spectrum so DC moves to the centre
/// (`fftshift` in NumPy/MATLAB terms). For odd lengths the extra element
/// stays with the second half, matching NumPy.
pub fn fftshift<T: Copy>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Inverse of [`fftshift`].
pub fn ifftshift<T: Copy>(x: &[T]) -> Vec<T> {
    let n = x.len();
    let half = n / 2;
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&x[half..]);
    out.extend_from_slice(&x[..half]);
    out
}

/// Frequency-domain circular convolution helper: pointwise product of the two
/// FFTs, inverse-transformed. Both inputs must share a power-of-two length.
///
/// # Panics
/// Panics if lengths differ or are not a power of two.
pub fn circular_convolve(a: &[Complex], b: &[Complex]) -> Vec<Complex> {
    assert_eq!(
        a.len(),
        b.len(),
        "circular convolution requires equal lengths"
    );
    let plan = FftPlan::cached(a.len());
    let mut fa = a.to_vec();
    let mut fb = b.to_vec();
    plan.forward(&mut fa);
    plan.forward(&mut fb);
    for (x, y) in fa.iter_mut().zip(&fb) {
        *x *= *y;
    }
    plan.inverse(&mut fa);
    fa
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((*x - *y).abs() < tol, "index {i}: {x:?} vs {y:?}");
        }
    }

    #[test]
    fn dc_input() {
        let x = vec![Complex::ONE; 8];
        let y = fft(&x);
        assert!((y[0] - Complex::real(8.0)).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn single_tone_lands_on_one_bin() {
        let n = 64;
        let k0 = 7;
        let x: Vec<Complex> = (0..n)
            .map(|i| Complex::exp_j(2.0 * PI * k0 as f64 * i as f64 / n as f64))
            .collect();
        let y = fft(&x);
        for (k, v) in y.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-9);
            } else {
                assert!(v.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn roundtrip_random() {
        // xorshift-style deterministic pseudo-random input
        let mut s = 0x12345678u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) - 0.5
        };
        for n in [2usize, 4, 16, 64, 256, 1024] {
            let x: Vec<Complex> = (0..n).map(|_| Complex::new(next(), next())).collect();
            let y = ifft(&fft(&x));
            assert_close(&x, &y, 1e-9);
        }
    }

    #[test]
    fn linearity() {
        let a: Vec<Complex> = (0..16)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let b: Vec<Complex> = (0..16).map(|i| Complex::new(1.0, i as f64 * 0.5)).collect();
        let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let expect: Vec<Complex> = fa.iter().zip(&fb).map(|(x, y)| *x + *y).collect();
        assert_close(&fsum, &expect, 1e-9);
    }

    #[test]
    fn parseval() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.17).sin(), (i as f64 * 0.31).cos()))
            .collect();
        let y = fft(&x);
        let ex: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let ey: f64 = y.iter().map(|v| v.norm_sqr()).sum::<f64>() / 64.0;
        assert!((ex - ey).abs() / ex < 1e-12);
    }

    #[test]
    fn fftshift_even_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
        assert_eq!(ifftshift(&fftshift(&[0, 1, 2, 3, 4])), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn circular_convolution_matches_direct() {
        let a: Vec<Complex> = (0..8).map(|i| Complex::real(i as f64)).collect();
        let b: Vec<Complex> = (0..8).map(|i| Complex::real((i % 3) as f64)).collect();
        let fast = circular_convolve(&a, &b);
        let n = 8usize;
        for k in 0..n {
            let mut acc = Complex::ZERO;
            for m in 0..n {
                acc += a[m] * b[(k + n - m) % n];
            }
            assert!((fast[k] - acc).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        FftPlan::new(12);
    }

    #[test]
    fn cached_plans_are_shared_and_identical_to_fresh() {
        let a = FftPlan::cached(256);
        let b = FftPlan::cached(256);
        assert!(Arc::ptr_eq(&a, &b), "same size must share one plan");
        let x: Vec<Complex> = (0..256)
            .map(|i| Complex::new((i as f64 * 0.11).sin(), (i as f64 * 0.07).cos()))
            .collect();
        let mut via_cache = x.clone();
        a.forward(&mut via_cache);
        let mut fresh = x;
        FftPlan::new(256).forward(&mut fresh);
        for (u, v) in via_cache.iter().zip(&fresh) {
            assert_eq!(u, v, "cached plan must be bit-identical to a fresh one");
        }
    }
}
