//! Deterministic pseudo-random numbers without external dependencies.
//!
//! Every stochastic element of the simulator (thermal noise, multipath tap
//! realizations, payload bits, trace arrivals) draws from [`SplitMix64`], a
//! 64-bit mixing generator with a one-word state (Steele, Lea & Flood,
//! OOPSLA 2014; the same finalizer as MurmurHash3). It is seedable from a
//! single `u64`, every distinct seed yields an independent-looking stream,
//! and — critically for the sweep engine — a fresh, statistically decorrelated
//! seed can be derived for any `(seed0, job index)` pair with [`SplitMix64::derive`],
//! so results never depend on which worker thread ran which job.
//!
//! The generator passes BigCrush when used as a stream and is far more than
//! adequate for Monte-Carlo channel realizations. It replaces the `rand`
//! crate, which is not available in the offline build environment.

/// The SplitMix64 finalizer: one bijective avalanche round over `u64`.
///
/// Useful on its own for hashing small integers into well-mixed words.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Minimal RNG interface used by the noise/channel generators.
///
/// Mirrors the subset of `rand::Rng` the codebase needs. Implemented by
/// [`SplitMix64`]; generic code (e.g. [`crate::noise`]) stays polymorphic so
/// tests can substitute counters or recorded streams.
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    #[inline]
    fn next_f64(&mut self) -> f64 {
        // 53 high bits → [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `u32`.
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform integer in `[0, n)`. `n` must be nonzero.
    #[inline]
    fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Multiply-shift rejection-free mapping; bias ≤ 2⁻⁶⁴·n, negligible
        // for the simulation sizes used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// A seedable one-word PRNG (SplitMix64).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator; the same `seed` reproduces the same stream.
    ///
    /// The seed is pre-mixed so that adjacent seeds (0, 1, 2, …) still give
    /// decorrelated streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            state: mix64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Derive the seed for job `index` of a sweep rooted at `seed0`.
    ///
    /// The mapping is a double avalanche over both words, so neighbouring
    /// `(seed0, index)` pairs land in unrelated parts of the seed space.
    /// Sweep executors use this to make per-job randomness a pure function
    /// of the job's grid position — independent of thread count or schedule.
    #[inline]
    pub fn derive(seed0: u64, index: u64) -> u64 {
        mix64(mix64(seed0).wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Fork an independent child generator from this stream.
    #[inline]
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(Rng::next_u64(self))
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }
}

// Inherent mirrors of the trait methods so callers holding a concrete
// `SplitMix64` don't need the trait in scope.
impl SplitMix64 {
    /// The next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        Rng::next_u64(self)
    }

    /// A uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        Rng::next_f64(self)
    }

    /// A uniform `u32`.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        Rng::next_u32(self)
    }

    /// A uniform integer in `[0, n)`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        Rng::below(self, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix64::new(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x), "{x}");
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut r = SplitMix64::new(3);
        let n = 100_000;
        let s: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = s / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SplitMix64::new(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn derive_decorrelates_adjacent_jobs() {
        // Seeds for neighbouring job indices must not collide and should
        // differ in roughly half their bits.
        let mut total = 0u32;
        for i in 0..1000u64 {
            let a = SplitMix64::derive(1234, i);
            let b = SplitMix64::derive(1234, i + 1);
            assert_ne!(a, b);
            total += (a ^ b).count_ones();
        }
        let avg = total as f64 / 1000.0;
        assert!((avg - 32.0).abs() < 2.0, "avg bit flips {avg}");
    }

    #[test]
    fn derive_differs_across_roots() {
        assert_ne!(SplitMix64::derive(1, 5), SplitMix64::derive(2, 5));
    }

    #[test]
    fn mix64_is_bijective_on_samples() {
        use std::collections::HashSet;
        let set: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(set.len(), 10_000);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SplitMix64::new(9);
        let mut child = parent.fork();
        let p: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
