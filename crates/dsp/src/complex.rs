//! Complex arithmetic over `f64`.
//!
//! A deliberately small, allocation-free complex type. It implements the
//! operator traits against both `Complex` and scalar `f64` operands, plus the
//! handful of transcendental helpers the rest of the workspace needs
//! (`exp_j`, `from_polar`, `arg`, …).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + j·im` with `f64` components.
///
/// `repr(C)` pins the `[re, im]` field order so slices of `Complex` can be
/// reinterpreted as interleaved `f64` lanes by the vectorized kernels in
/// [`crate::fir`] and [`crate::soa`].
#[derive(Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Complex {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl Complex {
    /// The additive identity, `0 + 0j`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0j`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1j`.
    pub const J: Complex = Complex { re: 0.0, im: 1.0 };

    /// Construct from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Construct a purely real value.
    #[inline]
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// Construct from polar form `r·e^{jθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex::new(r * theta.cos(), r * theta.sin())
    }

    /// The unit phasor `e^{jθ}`. This is the tag's modulation primitive:
    /// BackFi tags multiply the incident WiFi signal by `exp_j(θ)`.
    #[inline]
    pub fn exp_j(theta: f64) -> Self {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (avoids the square root; this is the
    /// instantaneous power of a baseband sample).
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`. Returns `NaN` components for zero input.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr();
        Complex::new(self.re / d, -self.im / d)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex::new(self.re * k, self.im * k)
    }

    /// Complex square root (principal branch).
    pub fn sqrt(self) -> Self {
        let r = self.abs();
        let theta = self.arg();
        Complex::from_polar(r.sqrt(), theta / 2.0)
    }

    /// `e^z` for complex `z`.
    pub fn exp(self) -> Self {
        Complex::from_polar(self.re.exp(), self.im)
    }

    /// True when either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// True when both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Debug for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{:.6}+{:.6}j", self.re, self.im)
        } else {
            write!(f, "{:.6}-{:.6}j", self.re, -self.im)
        }
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Complex {
    #[inline]
    fn from(re: f64) -> Self {
        Complex::real(re)
    }
}

impl Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for Complex {
    type Output = Complex;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal
    fn div(self, rhs: Complex) -> Complex {
        self * rhs.recip()
    }
}

impl Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: f64) -> Complex {
        self.scale(rhs)
    }
}

impl Mul<Complex> for f64 {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        rhs.scale(self)
    }
}

impl Div<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: f64) -> Complex {
        Complex::new(self.re / rhs, self.im / rhs)
    }
}

impl Add<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: f64) -> Complex {
        Complex::new(self.re + rhs, self.im)
    }
}

impl Sub<f64> for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: f64) -> Complex {
        Complex::new(self.re - rhs, self.im)
    }
}

impl AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex) {
        *self = *self * rhs;
    }
}

impl MulAssign<f64> for Complex {
    #[inline]
    fn mul_assign(&mut self, rhs: f64) {
        self.re *= rhs;
        self.im *= rhs;
    }
}

impl DivAssign<f64> for Complex {
    #[inline]
    fn div_assign(&mut self, rhs: f64) {
        self.re /= rhs;
        self.im /= rhs;
    }
}

impl Sum for Complex {
    fn sum<I: Iterator<Item = Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + b)
    }
}

impl<'a> Sum<&'a Complex> for Complex {
    fn sum<I: Iterator<Item = &'a Complex>>(iter: I) -> Complex {
        iter.fold(Complex::ZERO, |a, b| a + *b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    fn close(a: Complex, b: Complex) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn basic_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -4.0);
        assert!(close(a + b, Complex::new(4.0, -2.0)));
        assert!(close(a - b, Complex::new(-2.0, 6.0)));
        assert!(close(a * b, Complex::new(11.0, 2.0)));
        assert!(close((a / b) * b, a));
    }

    #[test]
    fn j_squared_is_minus_one() {
        assert!(close(Complex::J * Complex::J, -Complex::ONE));
    }

    #[test]
    fn polar_roundtrip() {
        for &(r, t) in &[(1.0, 0.3), (2.5, -1.2), (0.0, 0.0), (10.0, PI - 1e-6)] {
            let z = Complex::from_polar(r, t);
            assert!((z.abs() - r).abs() < 1e-12);
            if r > 0.0 {
                assert!((z.arg() - t).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn exp_j_is_unit_modulus() {
        for k in 0..100 {
            let t = k as f64 * 0.1 - 5.0;
            assert!((Complex::exp_j(t).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn exp_j_quadrature() {
        assert!(close(Complex::exp_j(0.0), Complex::ONE));
        assert!(close(Complex::exp_j(FRAC_PI_2), Complex::J));
        assert!(close(Complex::exp_j(PI), -Complex::ONE));
    }

    #[test]
    fn conj_properties() {
        let a = Complex::new(1.5, -0.5);
        assert!(close(a.conj().conj(), a));
        assert!((a * a.conj()).im.abs() < 1e-12);
        assert!(((a * a.conj()).re - a.norm_sqr()).abs() < 1e-12);
    }

    #[test]
    fn recip_inverts() {
        let a = Complex::new(3.0, 4.0);
        assert!(close(a * a.recip(), Complex::ONE));
    }

    #[test]
    fn sqrt_squares_back() {
        for &z in &[
            Complex::new(4.0, 0.0),
            Complex::new(0.0, 2.0),
            Complex::new(-1.0, 0.0),
            Complex::new(3.0, -4.0),
        ] {
            let s = z.sqrt();
            assert!((s * s - z).abs() < 1e-9, "z={z:?}");
        }
    }

    #[test]
    fn scalar_ops() {
        let a = Complex::new(1.0, -1.0);
        assert!(close(a * 2.0, Complex::new(2.0, -2.0)));
        assert!(close(2.0 * a, a * 2.0));
        assert!(close(a / 2.0, Complex::new(0.5, -0.5)));
        assert!(close(a + 1.0, Complex::new(2.0, -1.0)));
    }

    #[test]
    fn sum_iterator() {
        let v = [Complex::ONE; 10];
        let s: Complex = v.iter().sum();
        assert!(close(s, Complex::real(10.0)));
    }
}
