//! Direct-vs-FFT equivalence suite for the dispatching kernels.
//!
//! The public entry points `fir::convolve`, `fir::filter` and
//! `correlate::xcorr` switch between the direct O(N·L) forms and the
//! overlap-save FFT path on operand sizes. This suite sweeps a size grid
//! that straddles the crossover from both sides and pins the two forms to
//! each other within 1e-9 **relative** error (relative to the RMS of the
//! direct output, so near-zero samples of an otherwise large output don't
//! demand absolute 1e-9).

use backfi_dsp::correlate::{xcorr, xcorr_direct};
use backfi_dsp::fir::{convolve, convolve_direct, filter, filter_direct, ConvMode};
use backfi_dsp::noise::cgauss_vec;
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::Complex;

/// Signal/kernel length grid spanning the dispatch crossover
/// (`FFT_MIN_KERNEL` = 48 taps, `FFT_MIN_PRODUCT` = 2¹⁷).
const SIZES: &[(usize, usize)] = &[
    (256, 8),     // short kernel: always direct
    (512, 47),    // one tap below the kernel crossover
    (2048, 48),   // at the kernel crossover, below the product floor
    (4096, 48),   // both thresholds crossed: FFT
    (3000, 64),   // non-power-of-two signal, FFT
    (8192, 256),  // deep FFT territory (the benched point)
    (300, 300),   // equal lengths, single-block path
    (1024, 1000), // kernel nearly as long as the signal
];

fn rms(v: &[Complex]) -> f64 {
    (v.iter().map(|z| z.norm_sqr()).sum::<f64>() / v.len().max(1) as f64).sqrt()
}

fn assert_equiv(fast: &[Complex], direct: &[Complex], what: &str) {
    assert_eq!(fast.len(), direct.len(), "{what}: length mismatch");
    let scale = rms(direct).max(1e-300);
    for (i, (a, b)) in fast.iter().zip(direct).enumerate() {
        let err = (*a - *b).abs() / scale;
        assert!(err < 1e-9, "{what}: index {i} relative error {err:e}");
    }
}

#[test]
fn convolve_matches_direct_in_all_modes() {
    let mut rng = SplitMix64::new(0xC0);
    for &(n, m) in SIZES {
        let x = cgauss_vec(&mut rng, n, 1.0);
        let h = cgauss_vec(&mut rng, m, 1.0);
        for mode in [ConvMode::Full, ConvMode::Same, ConvMode::Valid] {
            let fast = convolve(&x, &h, mode);
            let direct = convolve_direct(&x, &h, mode);
            assert_equiv(&fast, &direct, &format!("convolve {n}x{m} {mode:?}"));
        }
    }
}

#[test]
fn filter_matches_direct() {
    let mut rng = SplitMix64::new(0xF1);
    for &(n, m) in SIZES {
        let x = cgauss_vec(&mut rng, n, 1.0);
        let h = cgauss_vec(&mut rng, m, 1.0);
        let fast = filter(&h, &x);
        let direct = filter_direct(&h, &x);
        assert_equiv(&fast, &direct, &format!("filter {n}x{m}"));
    }
}

#[test]
fn xcorr_matches_direct() {
    let mut rng = SplitMix64::new(0x5C);
    for &(n, m) in SIZES {
        if m > n {
            continue;
        }
        let x = cgauss_vec(&mut rng, n, 1.0);
        let t = cgauss_vec(&mut rng, m, 1.0);
        let fast = xcorr(&x, &t);
        let direct = xcorr_direct(&x, &t);
        assert_equiv(&fast, &direct, &format!("xcorr {n}x{m}"));
    }
}

#[test]
fn short_kernels_stay_bit_identical() {
    // Below the crossover the dispatcher must run the untouched direct code:
    // every channel operation in the link pipeline (≲ 32 taps) depends on
    // this for bit-reproducible sweep output.
    let mut rng = SplitMix64::new(0xB1);
    let x = cgauss_vec(&mut rng, 20_000, 1.0);
    let h = cgauss_vec(&mut rng, 32, 1.0);
    assert_eq!(
        convolve(&x, &h, ConvMode::Full),
        convolve_direct(&x, &h, ConvMode::Full)
    );
    assert_eq!(filter(&h, &x), filter_direct(&h, &x));
    let t = cgauss_vec(&mut rng, 47, 1.0);
    assert_eq!(xcorr(&x, &t), xcorr_direct(&x, &t));
}

#[test]
fn filter_axpy_region_is_bit_identical_to_direct() {
    // The scatter-AXPY AVX2 path covers 8 ≤ taps < 48 below the FFT product
    // floor. It reorders nothing — each output still accumulates
    // fl(fl(xᵢ·h[k]) + y[i+k]) in the same i-outer/k-inner order as
    // `filter_direct`, and the zero-input skip is replicated — so the
    // dispatcher must stay BIT-identical there, not merely close: the link
    // channel filters (h_env = 24 taps) feed byte-pinned figure output.
    // Hostile lanes (NaN/∞/denormal x, zero runs) must propagate the same.
    let mut rng = SplitMix64::new(0xAE);
    for taps in [8usize, 9, 16, 24, 32, 47] {
        let mut x = cgauss_vec(&mut rng, 6000, 1.0);
        for v in x.iter_mut().take(400).skip(120) {
            *v = Complex::ZERO; // leading-silence style zero run
        }
        x[700] = Complex::new(f64::NAN, 0.5);
        x[701] = Complex::new(f64::INFINITY, -1.0);
        x[702] = Complex::new(5e-324, -0.0);
        let h = cgauss_vec(&mut rng, taps, 1.0);
        let fast = filter(&h, &x);
        let direct = filter_direct(&h, &x);
        assert_eq!(fast.len(), direct.len());
        for (i, (a, b)) in fast.iter().zip(&direct).enumerate() {
            assert_eq!(
                (a.re.to_bits(), a.im.to_bits()),
                (b.re.to_bits(), b.im.to_bits()),
                "taps {taps} sample {i}: {a:?} vs {b:?}"
            );
        }
    }
}

#[test]
fn dispatch_is_deterministic() {
    // Same inputs twice → bit-identical output, whichever path runs.
    let mut rng = SplitMix64::new(0xD5);
    let x = cgauss_vec(&mut rng, 8192, 1.0);
    let h = cgauss_vec(&mut rng, 256, 1.0);
    assert_eq!(
        convolve(&x, &h, ConvMode::Full),
        convolve(&x, &h, ConvMode::Full)
    );
}
