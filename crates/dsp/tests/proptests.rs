//! Property-based tests over the DSP primitives.

use backfi_dsp::fft::{fft, fftshift, ifft, ifftshift};
use backfi_dsp::fir::{convolve, filter, ConvMode};
use backfi_dsp::stats::{db, mean_power, undb};
use backfi_dsp::Complex;
use proptest::prelude::*;

fn complex_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Complex>> {
    proptest::collection::vec(
        (-1e3f64..1e3, -1e3f64..1e3).prop_map(|(re, im)| Complex::new(re, im)),
        len,
    )
}

fn pow2_sized() -> impl Strategy<Value = Vec<Complex>> {
    (1u32..8).prop_flat_map(|bits| complex_vec((1 << bits)..((1 << bits) + 1)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_field_properties(re1 in -1e6f64..1e6, im1 in -1e6f64..1e6,
                                re2 in -1e3f64..1e3, im2 in -1e3f64..1e3) {
        let a = Complex::new(re1, im1);
        let b = Complex::new(re2, im2);
        // commutativity
        prop_assert!(((a + b) - (b + a)).abs() < 1e-9);
        prop_assert!(((a * b) - (b * a)).abs() < 1e-6 * (1.0 + (a * b).abs()));
        // conjugate distributes over multiplication
        let lhs = (a * b).conj();
        let rhs = a.conj() * b.conj();
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
        // |ab| = |a||b|
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6 * (1.0 + a.abs() * b.abs()));
    }

    #[test]
    fn division_inverts_multiplication(re in -1e3f64..1e3, im in -1e3f64..1e3) {
        prop_assume!(re.abs() + im.abs() > 1e-6);
        let a = Complex::new(re, im);
        let b = Complex::new(2.5, -1.25);
        prop_assert!(((b * a) / a - b).abs() < 1e-9);
    }

    #[test]
    fn fft_roundtrip(x in pow2_sized()) {
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn parseval_holds(x in pow2_sized()) {
        let n = x.len() as f64;
        let time_e: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq_e: f64 = fft(&x).iter().map(|v| v.norm_sqr()).sum::<f64>() / n;
        prop_assert!((time_e - freq_e).abs() < 1e-6 * (1.0 + time_e));
    }

    #[test]
    fn fftshift_roundtrip(x in complex_vec(1..64)) {
        let back = ifftshift(&fftshift(&x));
        prop_assert_eq!(back, x);
    }

    #[test]
    fn convolution_commutes(a in complex_vec(1..24), b in complex_vec(1..24)) {
        let ab = convolve(&a, &b, ConvMode::Full);
        let ba = convolve(&b, &a, ConvMode::Full);
        for (x, y) in ab.iter().zip(&ba) {
            prop_assert!((*x - *y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }

    #[test]
    fn filter_is_linear(x in complex_vec(8..64), h in complex_vec(1..8), k in -5.0f64..5.0) {
        let scaled: Vec<Complex> = x.iter().map(|v| v.scale(k)).collect();
        let y1: Vec<Complex> = filter(&h, &x).iter().map(|v| v.scale(k)).collect();
        let y2 = filter(&h, &scaled);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((*a - *b).abs() < 1e-5 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn db_undb_roundtrip(v in 1e-12f64..1e12) {
        let r = undb(db(v));
        prop_assert!((r / v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mean_power_scales_quadratically(x in complex_vec(1..64), k in 0.1f64..10.0) {
        let p1 = mean_power(&x);
        let scaled: Vec<Complex> = x.iter().map(|v| v.scale(k)).collect();
        let p2 = mean_power(&scaled);
        prop_assert!((p2 - k * k * p1).abs() < 1e-6 * (1.0 + p2));
    }

    #[test]
    fn hold_upsample_decimate_roundtrip(x in complex_vec(1..32), f in 1usize..10) {
        let up = backfi_dsp::resample::hold_upsample(&x, f);
        prop_assert_eq!(up.len(), x.len() * f);
        let down = backfi_dsp::resample::decimate(&up, f, 0);
        prop_assert_eq!(down, x);
    }

    #[test]
    fn quantile_is_monotone(mut v in proptest::collection::vec(-1e6f64..1e6, 1..50),
                            q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = backfi_dsp::stats::quantile(&v, lo);
        let b = backfi_dsp::stats::quantile(&v, hi);
        prop_assert!(a <= b + 1e-9);
    }
}
