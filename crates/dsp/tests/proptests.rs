//! Randomized property tests over the DSP primitives.
//!
//! Formerly `proptest`-based; now driven by the in-tree [`SplitMix64`]
//! generator so the suite builds offline and every case is reproducible from
//! its loop index.

use backfi_dsp::fft::{fft, fftshift, ifft, ifftshift};
use backfi_dsp::fir::{convolve, filter, ConvMode};
use backfi_dsp::rng::SplitMix64;
use backfi_dsp::stats::{db, mean_power, undb};
use backfi_dsp::Complex;

const CASES: u64 = 64;

fn uniform(rng: &mut SplitMix64, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

fn complex_vec(rng: &mut SplitMix64, len: usize) -> Vec<Complex> {
    (0..len)
        .map(|_| Complex::new(uniform(rng, -1e3, 1e3), uniform(rng, -1e3, 1e3)))
        .collect()
}

fn pow2_sized(rng: &mut SplitMix64) -> Vec<Complex> {
    let bits = 1 + rng.below(7) as u32; // 2..=128 samples
    complex_vec(rng, 1 << bits)
}

#[test]
fn complex_field_properties() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x01_0000 + case);
        let a = Complex::new(uniform(&mut rng, -1e6, 1e6), uniform(&mut rng, -1e6, 1e6));
        let b = Complex::new(uniform(&mut rng, -1e3, 1e3), uniform(&mut rng, -1e3, 1e3));
        // commutativity
        assert!(((a + b) - (b + a)).abs() < 1e-9);
        assert!(((a * b) - (b * a)).abs() < 1e-6 * (1.0 + (a * b).abs()));
        // conjugate distributes over multiplication
        let lhs = (a * b).conj();
        let rhs = a.conj() * b.conj();
        assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
        // |ab| = |a||b|
        assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-6 * (1.0 + a.abs() * b.abs()));
    }
}

#[test]
fn division_inverts_multiplication() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x02_0000 + case);
        let re = uniform(&mut rng, -1e3, 1e3);
        let im = uniform(&mut rng, -1e3, 1e3);
        if re.abs() + im.abs() <= 1e-6 {
            continue;
        }
        let a = Complex::new(re, im);
        let b = Complex::new(2.5, -1.25);
        assert!(((b * a) / a - b).abs() < 1e-9);
    }
}

#[test]
fn fft_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x03_0000 + case);
        let x = pow2_sized(&mut rng);
        let y = ifft(&fft(&x));
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }
}

#[test]
fn parseval_holds() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x04_0000 + case);
        let x = pow2_sized(&mut rng);
        let n = x.len() as f64;
        let time_e: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq_e: f64 = fft(&x).iter().map(|v| v.norm_sqr()).sum::<f64>() / n;
        assert!((time_e - freq_e).abs() < 1e-6 * (1.0 + time_e));
    }
}

#[test]
fn fftshift_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x05_0000 + case);
        let len = 1 + rng.below(63) as usize;
        let x = complex_vec(&mut rng, len);
        let back = ifftshift(&fftshift(&x));
        assert_eq!(back, x);
    }
}

#[test]
fn convolution_commutes() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x06_0000 + case);
        let n_a = 1 + rng.below(23) as usize;
        let a = complex_vec(&mut rng, n_a);
        let n_b = 1 + rng.below(23) as usize;
        let b = complex_vec(&mut rng, n_b);
        let ab = convolve(&a, &b, ConvMode::Full);
        let ba = convolve(&b, &a, ConvMode::Full);
        for (x, y) in ab.iter().zip(&ba) {
            assert!((*x - *y).abs() < 1e-6 * (1.0 + x.abs()));
        }
    }
}

#[test]
fn filter_is_linear() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x07_0000 + case);
        let n_x = 8 + rng.below(56) as usize;
        let x = complex_vec(&mut rng, n_x);
        let n_h = 1 + rng.below(7) as usize;
        let h = complex_vec(&mut rng, n_h);
        let k = uniform(&mut rng, -5.0, 5.0);
        let scaled: Vec<Complex> = x.iter().map(|v| v.scale(k)).collect();
        let y1: Vec<Complex> = filter(&h, &x).iter().map(|v| v.scale(k)).collect();
        let y2 = filter(&h, &scaled);
        for (a, b) in y1.iter().zip(&y2) {
            assert!((*a - *b).abs() < 1e-5 * (1.0 + a.abs()));
        }
    }
}

#[test]
fn db_undb_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x08_0000 + case);
        // Log-uniform over 1e-12..1e12.
        let v = 10f64.powf(uniform(&mut rng, -12.0, 12.0));
        let r = undb(db(v));
        assert!((r / v - 1.0).abs() < 1e-9);
    }
}

#[test]
fn mean_power_scales_quadratically() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x09_0000 + case);
        let n_x = 1 + rng.below(63) as usize;
        let x = complex_vec(&mut rng, n_x);
        let k = uniform(&mut rng, 0.1, 10.0);
        let p1 = mean_power(&x);
        let scaled: Vec<Complex> = x.iter().map(|v| v.scale(k)).collect();
        let p2 = mean_power(&scaled);
        assert!((p2 - k * k * p1).abs() < 1e-6 * (1.0 + p2));
    }
}

#[test]
fn hold_upsample_decimate_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x0A_0000 + case);
        let n_x = 1 + rng.below(31) as usize;
        let x = complex_vec(&mut rng, n_x);
        let f = 1 + rng.below(9) as usize;
        let up = backfi_dsp::resample::hold_upsample(&x, f);
        assert_eq!(up.len(), x.len() * f);
        let down = backfi_dsp::resample::decimate(&up, f, 0);
        assert_eq!(down, x);
    }
}

#[test]
fn quantile_is_monotone() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x0B_0000 + case);
        let len = 1 + rng.below(49) as usize;
        let mut v: Vec<f64> = (0..len).map(|_| uniform(&mut rng, -1e6, 1e6)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q1 = rng.next_f64();
        let q2 = rng.next_f64();
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = backfi_dsp::stats::quantile(&v, lo);
        let b = backfi_dsp::stats::quantile(&v, hi);
        assert!(a <= b + 1e-9);
    }
}
