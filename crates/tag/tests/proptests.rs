//! Property-based tests of the tag: framing must round-trip any payload,
//! PSK mapping must be self-consistent, and the energy model must respect
//! its structural monotonicities.

use backfi_coding::CodeRate;
use backfi_tag::config::{TagConfig, TagModulation};
use backfi_tag::energy::{epb_pj, repb};
use backfi_tag::framer::TagFrame;
use backfi_tag::psk::{bits_to_phase, phase_to_bits};
use proptest::prelude::*;

fn any_tag_cfg() -> impl Strategy<Value = TagConfig> {
    (0usize..3, 0usize..2, 0usize..6).prop_map(|(m, r, f)| TagConfig {
        modulation: TagModulation::ALL[m],
        code_rate: [CodeRate::Half, CodeRate::TwoThirds][r],
        symbol_rate_hz: backfi_tag::config::TAG_SYMBOL_RATES[f],
        preamble_us: 32.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frame_bits_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..300)) {
        let bits = TagFrame::info_bits(&payload);
        prop_assert_eq!(TagFrame::parse(&bits).unwrap(), payload);
    }

    #[test]
    fn frame_parse_survives_trailing_pad(payload in proptest::collection::vec(any::<u8>(), 1..100),
                                         pad in proptest::collection::vec(any::<bool>(), 0..40)) {
        let mut bits = TagFrame::info_bits(&payload);
        bits.extend(pad);
        prop_assert_eq!(TagFrame::parse(&bits).unwrap(), payload);
    }

    #[test]
    fn frame_rejects_any_payload_bit_flip(payload in proptest::collection::vec(any::<u8>(), 1..64),
                                          at in 24usize..500) {
        let mut bits = TagFrame::info_bits(&payload);
        let i = 24 + (at % (bits.len() - 24));
        bits[i] = !bits[i];
        prop_assert!(TagFrame::parse(&bits).is_err());
    }

    #[test]
    fn encode_length_matches_prediction(payload in proptest::collection::vec(any::<u8>(), 0..200),
                                        cfg in any_tag_cfg()) {
        let symbols = TagFrame::encode(&payload, &cfg);
        prop_assert_eq!(symbols.len(), TagFrame::symbol_count(payload.len(), &cfg));
        prop_assert!(symbols.iter().all(|&s| s < cfg.modulation.order()));
    }

    #[test]
    fn psk_roundtrip(v in 0usize..16, m in 0usize..3) {
        let modulation = TagModulation::ALL[m];
        let v = v % modulation.order();
        let bits: Vec<bool> = (0..modulation.bits_per_symbol()).map(|i| (v >> i) & 1 == 1).collect();
        let phase = bits_to_phase(modulation, &bits);
        prop_assert_eq!(phase_to_bits(modulation, phase), bits);
    }

    #[test]
    fn psk_tolerates_subthreshold_phase_noise(v in 0usize..16, m in 0usize..3,
                                              frac in -0.49f64..0.49) {
        let modulation = TagModulation::ALL[m];
        let v = v % modulation.order();
        let bits: Vec<bool> = (0..modulation.bits_per_symbol()).map(|i| (v >> i) & 1 == 1).collect();
        let step = std::f64::consts::TAU / modulation.order() as f64;
        let phase = bits_to_phase(modulation, &bits) + frac * step;
        prop_assert_eq!(phase_to_bits(modulation, phase), bits);
    }

    #[test]
    fn epb_positive_and_static_dominates_at_low_rate(cfg in any_tag_cfg()) {
        let e = epb_pj(&cfg);
        prop_assert!(e > 0.0);
        // Slowing the same configuration down always costs energy per bit.
        let mut slow = cfg;
        slow.symbol_rate_hz = 10e3;
        let mut fast = cfg;
        fast.symbol_rate_hz = 2.5e6;
        prop_assert!(epb_pj(&slow) > epb_pj(&fast));
    }

    #[test]
    fn repb_of_reference_is_one(_x in 0..1i32) {
        prop_assert!((repb(&backfi_tag::energy::reference_config()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_payload_fits_airtime(cfg in any_tag_cfg(), airtime_us in 100.0f64..8000.0) {
        let max = TagFrame::max_payload_bytes(&cfg, airtime_us);
        if max > 0 {
            let symbols = TagFrame::symbol_count(max, &cfg);
            let avail = ((airtime_us - 16.0 - cfg.preamble_us) * 1e-6 * cfg.symbol_rate_hz) as usize;
            prop_assert!(symbols <= avail, "{} symbols > {} available", symbols, avail);
        }
    }

    #[test]
    fn throughput_identity(cfg in any_tag_cfg()) {
        let t = cfg.throughput_bps();
        let expect = cfg.symbol_rate_hz
            * cfg.modulation.bits_per_symbol() as f64
            * cfg.code_rate.as_f64();
        prop_assert!((t - expect).abs() < 1e-6);
    }
}
