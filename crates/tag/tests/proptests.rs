//! Randomized tests of the tag: framing must round-trip any payload,
//! PSK mapping must be self-consistent, and the energy model must respect
//! its structural monotonicities.
//!
//! Formerly `proptest`-based; now driven by the in-tree [`SplitMix64`]
//! generator so the suite builds offline and every case is reproducible from
//! its loop index.

use backfi_coding::CodeRate;
use backfi_dsp::rng::SplitMix64;
use backfi_tag::config::{TagConfig, TagModulation};
use backfi_tag::energy::{epb_pj, repb};
use backfi_tag::framer::TagFrame;
use backfi_tag::psk::{bits_to_phase, phase_to_bits};

const CASES: u64 = 64;

fn byte_vec(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn any_tag_cfg(rng: &mut SplitMix64) -> TagConfig {
    TagConfig {
        modulation: TagModulation::ALL[rng.below(3) as usize],
        code_rate: [CodeRate::Half, CodeRate::TwoThirds][rng.below(2) as usize],
        symbol_rate_hz: backfi_tag::config::TAG_SYMBOL_RATES[rng.below(6) as usize],
        preamble_us: 32.0,
    }
}

#[test]
fn frame_bits_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x31_0000 + case);
        let n_payload = rng.below(300) as usize;
        let payload = byte_vec(&mut rng, n_payload);
        let bits = TagFrame::info_bits(&payload);
        assert_eq!(TagFrame::parse(&bits).unwrap(), payload);
    }
}

#[test]
fn frame_parse_survives_trailing_pad() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x32_0000 + case);
        let n_payload = 1 + rng.below(99) as usize;
        let payload = byte_vec(&mut rng, n_payload);
        let mut bits = TagFrame::info_bits(&payload);
        let pad_len = rng.below(40) as usize;
        bits.extend((0..pad_len).map(|_| rng.next_u64() & 1 == 1));
        assert_eq!(TagFrame::parse(&bits).unwrap(), payload);
    }
}

#[test]
fn frame_rejects_any_payload_bit_flip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x33_0000 + case);
        let n_payload = 1 + rng.below(63) as usize;
        let payload = byte_vec(&mut rng, n_payload);
        let mut bits = TagFrame::info_bits(&payload);
        let at = 24 + rng.below(476) as usize;
        let i = 24 + (at % (bits.len() - 24));
        bits[i] = !bits[i];
        assert!(TagFrame::parse(&bits).is_err());
    }
}

#[test]
fn encode_length_matches_prediction() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x34_0000 + case);
        let n_payload = rng.below(200) as usize;
        let payload = byte_vec(&mut rng, n_payload);
        let cfg = any_tag_cfg(&mut rng);
        let symbols = TagFrame::encode(&payload, &cfg);
        assert_eq!(symbols.len(), TagFrame::symbol_count(payload.len(), &cfg));
        assert!(symbols.iter().all(|&s| s < cfg.modulation.order()));
    }
}

#[test]
fn psk_roundtrip() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x35_0000 + case);
        let modulation = TagModulation::ALL[rng.below(3) as usize];
        let v = rng.below(16) as usize % modulation.order();
        let bits: Vec<bool> = (0..modulation.bits_per_symbol())
            .map(|i| (v >> i) & 1 == 1)
            .collect();
        let phase = bits_to_phase(modulation, &bits);
        assert_eq!(phase_to_bits(modulation, phase), bits);
    }
}

#[test]
fn psk_tolerates_subthreshold_phase_noise() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x36_0000 + case);
        let modulation = TagModulation::ALL[rng.below(3) as usize];
        let v = rng.below(16) as usize % modulation.order();
        let frac = -0.49 + 0.98 * rng.next_f64();
        let bits: Vec<bool> = (0..modulation.bits_per_symbol())
            .map(|i| (v >> i) & 1 == 1)
            .collect();
        let step = std::f64::consts::TAU / modulation.order() as f64;
        let phase = bits_to_phase(modulation, &bits) + frac * step;
        assert_eq!(phase_to_bits(modulation, phase), bits);
    }
}

#[test]
fn epb_positive_and_static_dominates_at_low_rate() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x37_0000 + case);
        let cfg = any_tag_cfg(&mut rng);
        let e = epb_pj(&cfg);
        assert!(e > 0.0);
        // Slowing the same configuration down always costs energy per bit.
        let mut slow = cfg;
        slow.symbol_rate_hz = 10e3;
        let mut fast = cfg;
        fast.symbol_rate_hz = 2.5e6;
        assert!(epb_pj(&slow) > epb_pj(&fast));
    }
}

#[test]
fn repb_of_reference_is_one() {
    assert!((repb(&backfi_tag::energy::reference_config()) - 1.0).abs() < 1e-12);
}

#[test]
fn max_payload_fits_airtime() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x38_0000 + case);
        let cfg = any_tag_cfg(&mut rng);
        let airtime_us = 100.0 + 7900.0 * rng.next_f64();
        let max = TagFrame::max_payload_bytes(&cfg, airtime_us);
        if max > 0 {
            let symbols = TagFrame::symbol_count(max, &cfg);
            let avail =
                ((airtime_us - 16.0 - cfg.preamble_us) * 1e-6 * cfg.symbol_rate_hz) as usize;
            assert!(symbols <= avail, "{symbols} symbols > {avail} available");
        }
    }
}

#[test]
fn throughput_identity() {
    for case in 0..CASES {
        let mut rng = SplitMix64::new(0x39_0000 + case);
        let cfg = any_tag_cfg(&mut rng);
        let t = cfg.throughput_bps();
        let expect =
            cfg.symbol_rate_hz * cfg.modulation.bits_per_symbol() as f64 * cfg.code_rate.as_f64();
        assert!((t - expect).abs() < 1e-6);
    }
}
