//! Gray-coded n-PSK phase mapping for the tag's data symbols.
//!
//! The tag "reads the data that needs to be transmitted, picks out two bits
//! at a time, maps it to the appropriate QPSK symbol and then multiplies the
//! received excitation signal … with the corresponding phase signal" (§4.1).
//! Gray coding makes adjacent constellation points differ in one bit, so the
//! dominant nearest-neighbour errors cost a single bit — which the
//! convolutional code then cleans up.

use crate::config::TagModulation;

/// Gray-encode an index (binary → Gray).
pub fn gray_encode(v: usize) -> usize {
    v ^ (v >> 1)
}

/// Gray-decode (Gray → binary).
pub fn gray_decode(mut g: usize) -> usize {
    let mut v = g;
    while g > 0 {
        g >>= 1;
        v ^= g;
    }
    v
}

/// Map `bits_per_symbol` bits (LSB-first) to a phase in radians.
///
/// The constellation point for bit value `v` is at angle
/// `2π·gray_encode(v)/order`, so Gray-adjacent values are physical
/// neighbours.
///
/// # Panics
/// Panics if `bits.len()` doesn't match the modulation.
pub fn bits_to_phase(m: TagModulation, bits: &[bool]) -> f64 {
    assert_eq!(bits.len(), m.bits_per_symbol(), "wrong bit count for {m:?}");
    let v = bits
        .iter()
        .enumerate()
        .fold(0usize, |acc, (i, &b)| acc | ((b as usize) << i));
    let idx = gray_encode(v);
    2.0 * std::f64::consts::PI * idx as f64 / m.order() as f64
}

/// Nearest-phase hard decision: returns the bits (LSB-first).
pub fn phase_to_bits(m: TagModulation, phase: f64) -> Vec<bool> {
    let order = m.order() as f64;
    let step = 2.0 * std::f64::consts::PI / order;
    let mut idx = (phase / step).round() as i64 % m.order() as i64;
    if idx < 0 {
        idx += m.order() as i64;
    }
    let v = gray_decode(idx as usize);
    (0..m.bits_per_symbol())
        .map(|i| (v >> i) & 1 == 1)
        .collect()
}

/// Per-bit soft metrics (max-log LLR, positive ⇒ bit 1) for a received
/// phasor `z` whose expected magnitude is `amp` and whose noise variance is
/// `noise_var`.
///
/// Thin wrapper over [`SoftDemapper`]; callers demapping many symbols with
/// the same `(modulation, amp)` should build the demapper once instead (the
/// construction is what pays the `sin`/`cos` per constellation point).
pub fn soft_bits(
    m: TagModulation,
    z: backfi_dsp::Complex,
    amp: f64,
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    SoftDemapper::new(m, amp).soft_bits(z, noise_var, out);
}

/// Reference per-bit soft demapper: recomputes every constellation point
/// (`from_polar` per point per bit) on each call. Kept as the bit-exact
/// oracle the cached [`SoftDemapper`] is pinned against in the `_equiv`
/// tests; use [`SoftDemapper`] in hot paths.
pub fn soft_bits_direct(
    m: TagModulation,
    z: backfi_dsp::Complex,
    amp: f64,
    noise_var: f64,
    out: &mut Vec<f64>,
) {
    let n = m.bits_per_symbol();
    let scale = 1.0 / noise_var.max(1e-18);
    for bit in 0..n {
        let mut d0 = f64::INFINITY;
        let mut d1 = f64::INFINITY;
        for v in 0..m.order() {
            let idx = gray_encode(v);
            let phase = 2.0 * std::f64::consts::PI * idx as f64 / m.order() as f64;
            let p = backfi_dsp::Complex::from_polar(amp, phase);
            let d = (z - p).norm_sqr();
            if (v >> bit) & 1 == 1 {
                d1 = d1.min(d);
            } else {
                d0 = d0.min(d);
            }
        }
        out.push((d0 - d1) * scale);
    }
}

/// Cached Gray-PSK soft demapper: the constellation for one
/// `(modulation, amp)` pair, stored as planar `re`/`im` tables in natural
/// bit-value order.
///
/// Construction computes each point with exactly the
/// `Complex::from_polar(amp, 2π·gray(v)/order)` expression the
/// [`soft_bits_direct`] reference uses, so the cached distances — and
/// therefore the emitted LLRs — are bit-identical to the reference:
/// per bit, the reference takes `min` over the same distance multiset in the
/// same `v` order, and hoisting the (identical) distance computation out of
/// the bit loop cannot change any `f64::min` chain.
#[derive(Clone, Debug)]
pub struct SoftDemapper {
    order: usize,
    bits: usize,
    /// Planar constellation, natural bit-value order: `pre[v] + j·pim[v]`
    /// is the point a symbol with bit value `v` is transmitted as.
    pre: [f64; 16],
    pim: [f64; 16],
}

impl SoftDemapper {
    /// Precompute the planar constellation tables for `(m, amp)`.
    pub fn new(m: TagModulation, amp: f64) -> Self {
        let mut d = SoftDemapper {
            order: m.order(),
            bits: m.bits_per_symbol(),
            pre: [0.0; 16],
            pim: [0.0; 16],
        };
        for v in 0..d.order {
            let idx = gray_encode(v);
            let phase = 2.0 * std::f64::consts::PI * idx as f64 / m.order() as f64;
            let p = backfi_dsp::Complex::from_polar(amp, phase);
            d.pre[v] = p.re;
            d.pim[v] = p.im;
        }
        d
    }

    /// Append the per-bit LLRs for phasor `z` to `out`; bit-identical to
    /// [`soft_bits_direct`] with the same `(m, amp)`.
    pub fn soft_bits(&self, z: backfi_dsp::Complex, noise_var: f64, out: &mut Vec<f64>) {
        let scale = 1.0 / noise_var.max(1e-18);
        let mut dist = [0.0f64; 16];
        for (v, d) in dist.iter_mut().enumerate().take(self.order) {
            let dre = z.re - self.pre[v];
            let dim = z.im - self.pim[v];
            *d = dre * dre + dim * dim;
        }
        for bit in 0..self.bits {
            let mut d0 = f64::INFINITY;
            let mut d1 = f64::INFINITY;
            for (v, &d) in dist[..self.order].iter().enumerate() {
                if (v >> bit) & 1 == 1 {
                    d1 = d1.min(d);
                } else {
                    d0 = d0.min(d);
                }
            }
            out.push((d0 - d1) * scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_dsp::Complex;

    #[test]
    fn gray_roundtrip() {
        for v in 0..64 {
            assert_eq!(gray_decode(gray_encode(v)), v);
        }
    }

    #[test]
    fn gray_adjacent_differ_one_bit() {
        for v in 0..15usize {
            let d = gray_encode(v) ^ gray_encode(v + 1);
            assert_eq!(d.count_ones(), 1);
        }
    }

    #[test]
    fn phase_roundtrip_all_modulations() {
        for m in TagModulation::ALL {
            for v in 0..m.order() {
                let bits: Vec<bool> = (0..m.bits_per_symbol())
                    .map(|i| (v >> i) & 1 == 1)
                    .collect();
                let phase = bits_to_phase(m, &bits);
                assert_eq!(phase_to_bits(m, phase), bits, "{m:?} v={v}");
            }
        }
    }

    #[test]
    fn phases_are_evenly_spaced() {
        for m in TagModulation::ALL {
            let mut phases: Vec<f64> = (0..m.order())
                .map(|v| {
                    let bits: Vec<bool> = (0..m.bits_per_symbol())
                        .map(|i| (v >> i) & 1 == 1)
                        .collect();
                    bits_to_phase(m, &bits)
                })
                .collect();
            phases.sort_by(f64::total_cmp);
            let step = 2.0 * std::f64::consts::PI / m.order() as f64;
            for (i, p) in phases.iter().enumerate() {
                assert!((p - i as f64 * step).abs() < 1e-12, "{m:?} {i}");
            }
        }
    }

    #[test]
    fn hard_decision_tolerates_noise_within_half_step() {
        let m = TagModulation::Psk16;
        let bits = vec![true, false, true, false];
        let phase = bits_to_phase(m, &bits);
        let step = 2.0 * std::f64::consts::PI / 16.0;
        assert_eq!(phase_to_bits(m, phase + 0.45 * step), bits);
        assert_eq!(phase_to_bits(m, phase - 0.45 * step), bits);
    }

    #[test]
    fn negative_phase_wraps() {
        let m = TagModulation::Qpsk;
        let bits = phase_to_bits(m, -0.1);
        assert_eq!(bits, phase_to_bits(m, 2.0 * std::f64::consts::PI - 0.1));
    }

    #[test]
    fn soft_bits_cached_matches_direct_bitwise() {
        use backfi_dsp::rng::SplitMix64;
        let mut rng = SplitMix64::new(0xD5);
        for m in TagModulation::ALL {
            for amp in [1.0, 0.37, 2.5] {
                let demap = SoftDemapper::new(m, amp);
                let mut zs: Vec<Complex> = (0..64)
                    .map(|_| {
                        Complex::new(4.0 * (rng.next_f64() - 0.5), 4.0 * (rng.next_f64() - 0.5))
                    })
                    .collect();
                // Hostile lanes: the cached path must reproduce the
                // reference's NaN/∞ propagation exactly.
                zs.push(Complex::new(f64::NAN, 0.3));
                zs.push(Complex::new(f64::INFINITY, -1.0));
                zs.push(Complex::new(0.0, f64::NEG_INFINITY));
                for z in zs {
                    for nv in [1e-3, 0.2, 0.0] {
                        let mut a = Vec::new();
                        let mut b = Vec::new();
                        demap.soft_bits(z, nv, &mut a);
                        soft_bits_direct(m, z, amp, nv, &mut b);
                        assert_eq!(a.len(), b.len());
                        for (i, (p, q)) in a.iter().zip(&b).enumerate() {
                            assert_eq!(
                                p.to_bits(),
                                q.to_bits(),
                                "{m:?} amp {amp} z {z:?} bit {i}: {p} vs {q}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn soft_bits_sign_matches_hard_decision() {
        for m in TagModulation::ALL {
            for v in 0..m.order() {
                let bits: Vec<bool> = (0..m.bits_per_symbol())
                    .map(|i| (v >> i) & 1 == 1)
                    .collect();
                let phase = bits_to_phase(m, &bits);
                let z = Complex::from_polar(1.0, phase);
                let mut llr = Vec::new();
                soft_bits(m, z, 1.0, 0.01, &mut llr);
                for (i, &b) in bits.iter().enumerate() {
                    assert_eq!(llr[i] > 0.0, b, "{m:?} v={v} bit {i}");
                }
            }
        }
    }
}
