//! Tag communication parameters.

use backfi_coding::CodeRate;

/// Phase modulations the switch tree supports (§4.1: "BPSK to 16-PSK").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TagModulation {
    /// 1 bit per symbol, 1 SPDT switch.
    Bpsk,
    /// 2 bits per symbol, 3 SPDT switches.
    Qpsk,
    /// 4 bits per symbol, 15 SPDT switches.
    Psk16,
}

impl TagModulation {
    /// All supported modulations, lowest order first.
    pub const ALL: [TagModulation; 3] = [
        TagModulation::Bpsk,
        TagModulation::Qpsk,
        TagModulation::Psk16,
    ];

    /// Constellation size.
    pub fn order(self) -> usize {
        match self {
            TagModulation::Bpsk => 2,
            TagModulation::Qpsk => 4,
            TagModulation::Psk16 => 16,
        }
    }

    /// Bits per symbol.
    pub fn bits_per_symbol(self) -> usize {
        match self {
            TagModulation::Bpsk => 1,
            TagModulation::Qpsk => 2,
            TagModulation::Psk16 => 4,
        }
    }

    /// SPDT switches needed in the tree (Fig. 3: "for BPSK only one switch is
    /// needed, for QPSK three switches and for 16-PSK 15 switches").
    pub fn spdt_switches(self) -> usize {
        self.order() - 1
    }

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            TagModulation::Bpsk => "BPSK",
            TagModulation::Qpsk => "QPSK",
            TagModulation::Psk16 => "16PSK",
        }
    }
}

/// Coding rates the tag's encoder supports ("in our current design we only
/// support two coding rates: 1/2 and 2/3", §6.1).
pub const TAG_CODE_RATES: [CodeRate; 2] = [CodeRate::Half, CodeRate::TwoThirds];

/// Symbol switching rates evaluated in the paper's Fig. 7 (Hz).
pub const TAG_SYMBOL_RATES: [f64; 6] = [10e3, 100e3, 500e3, 1e6, 2e6, 2.5e6];

/// One complete tag configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TagConfig {
    /// Phase modulation.
    pub modulation: TagModulation,
    /// Convolutional code rate (1/2 or 2/3).
    pub code_rate: CodeRate,
    /// Symbol switching rate in Hz (0.01–2.5 MSPS; §4.1).
    pub symbol_rate_hz: f64,
    /// Tag preamble duration in µs (32 in the baseline design; Fig. 8 also
    /// evaluates 96).
    pub preamble_us: f64,
}

impl Default for TagConfig {
    fn default() -> Self {
        TagConfig {
            modulation: TagModulation::Qpsk,
            code_rate: CodeRate::Half,
            symbol_rate_hz: 1e6,
            preamble_us: 32.0,
        }
    }
}

impl TagConfig {
    /// Every (modulation × coding rate × symbol rate) combination of the
    /// paper's Fig. 7 with the given preamble duration — the space the rate
    /// adaptation searches.
    pub fn all_combinations(preamble_us: f64) -> Vec<TagConfig> {
        let mut v = Vec::new();
        for &symbol_rate_hz in &TAG_SYMBOL_RATES {
            for modulation in TagModulation::ALL {
                for code_rate in TAG_CODE_RATES {
                    v.push(TagConfig {
                        modulation,
                        code_rate,
                        symbol_rate_hz,
                        preamble_us,
                    });
                }
            }
        }
        v
    }

    /// Uplink information throughput in bit/s:
    /// `symbol_rate × bits_per_symbol × code_rate`.
    pub fn throughput_bps(&self) -> f64 {
        self.symbol_rate_hz * self.modulation.bits_per_symbol() as f64 * self.code_rate.as_f64()
    }

    /// Baseband samples per tag symbol at 20 MHz.
    ///
    /// # Panics
    /// Panics if the symbol rate doesn't divide the sample rate to ≥ 8
    /// samples (the decoder needs several samples per symbol for MRC).
    pub fn samples_per_symbol(&self) -> usize {
        let sps = backfi_dsp::SAMPLE_RATE_HZ / self.symbol_rate_hz;
        let n = sps.round() as usize;
        assert!(
            n >= 8,
            "symbol rate {} too fast for 20 MHz sampling",
            self.symbol_rate_hz
        );
        n
    }

    /// Short label like `"16PSK 2/3 @ 2.5 MSPS"`.
    pub fn label(&self) -> String {
        format!(
            "{} {} @ {} kSPS",
            self.modulation.label(),
            self.code_rate.label(),
            self.symbol_rate_hz / 1e3
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_matches_fig7_corners() {
        // Fig. 7: BPSK 1/2 @ 10 kHz -> 5 kbps; 16PSK 2/3 @ 2.5 MHz -> 6.67 Mbps.
        let slow = TagConfig {
            modulation: TagModulation::Bpsk,
            code_rate: CodeRate::Half,
            symbol_rate_hz: 10e3,
            preamble_us: 32.0,
        };
        assert!((slow.throughput_bps() - 5e3).abs() < 1.0);
        let fast = TagConfig {
            modulation: TagModulation::Psk16,
            code_rate: CodeRate::TwoThirds,
            symbol_rate_hz: 2.5e6,
            preamble_us: 32.0,
        };
        assert!((fast.throughput_bps() - 6.6667e6).abs() < 1e3);
    }

    #[test]
    fn combination_count() {
        // 6 symbol rates × 3 modulations × 2 code rates = 36 (Fig. 7 grid).
        assert_eq!(TagConfig::all_combinations(32.0).len(), 36);
    }

    #[test]
    fn samples_per_symbol() {
        let mut c = TagConfig {
            symbol_rate_hz: 2.5e6,
            ..Default::default()
        };
        assert_eq!(c.samples_per_symbol(), 8);
        c.symbol_rate_hz = 10e3;
        assert_eq!(c.samples_per_symbol(), 2000);
    }

    #[test]
    fn switch_counts_match_paper() {
        assert_eq!(TagModulation::Bpsk.spdt_switches(), 1);
        assert_eq!(TagModulation::Qpsk.spdt_switches(), 3);
        assert_eq!(TagModulation::Psk16.spdt_switches(), 15);
    }
}
