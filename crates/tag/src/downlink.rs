//! The AP → tag downlink.
//!
//! The paper delegates the downlink to the prior Wi-Fi Backscatter design:
//! "The same detection circuitry can be used to implement the downlink
//! communication to the tag from the AP … BackFi reuses this design for the
//! downlink and provides similar throughputs of 20 Kbps" (§5.2.1).
//!
//! The AP on-off-keys bursts that the tag's existing envelope detector
//! demodulates for free. Each Manchester *chip* spans 25 comparator
//! decisions (25 µs) so the ultra-low-power comparator can majority-vote it;
//! one data bit = two chips = 50 µs → exactly the paper's 20 kbit/s.
//! Manchester keeps the stream DC-free (the peak-hold threshold stays
//! honest) and self-clocking.

use crate::detector::{EnergyDetector, SAMPLES_PER_BIT};
use backfi_coding::crc::{crc8_append, crc8_check};
use backfi_dsp::Complex;

/// Comparator decisions (µs) per Manchester chip.
pub const COMPARATOR_BITS_PER_CHIP: usize = 25;
/// Chips per data bit (Manchester).
pub const CHIPS_PER_BIT: usize = 2;
/// Downlink data rate: one bit per 50 µs = 20 kbit/s.
pub const DOWNLINK_BPS: f64 = 1e6 / (COMPARATOR_BITS_PER_CHIP * CHIPS_PER_BIT) as f64;
/// Start-of-frame chip pattern (three marks — impossible inside Manchester
/// data, which never has more than two equal chips in a row).
pub const SOF: [bool; 4] = [true, true, true, false];

/// Encode a downlink frame (payload ‖ CRC-8) into Manchester chips.
pub fn encode(payload: &[u8]) -> Vec<bool> {
    let framed = crc8_append(payload);
    let mut chips: Vec<bool> = SOF.to_vec();
    for byte in framed {
        for i in 0..8 {
            if (byte >> i) & 1 == 1 {
                chips.push(true);
                chips.push(false);
            } else {
                chips.push(false);
                chips.push(true);
            }
        }
    }
    chips
}

/// Expand chips to baseband samples at the given pulse amplitude
/// (25 µs × 20 samples per chip).
pub fn modulate(chips: &[bool], amplitude: f64) -> Vec<Complex> {
    let per_chip = COMPARATOR_BITS_PER_CHIP * SAMPLES_PER_BIT;
    let mut out = Vec::with_capacity(chips.len() * per_chip);
    for (i, &c) in chips.iter().enumerate() {
        let a = if c { amplitude } else { 0.0 };
        out.extend((0..per_chip).map(|k| Complex::from_polar(a, 0.7 * (i * per_chip + k) as f64)));
    }
    out
}

/// Decode errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DownlinkError {
    /// No start-of-frame found at any chip alignment.
    NoSof,
    /// A chip pair violated Manchester coding mid-frame.
    CodingViolation,
    /// CRC-8 mismatch.
    BadCrc,
    /// Frame ran past the end of the chip stream.
    Truncated,
}

/// Demodulate a received sample stream through the tag's energy detector and
/// decode the first downlink frame found. `expected_len` is the payload size
/// (downlink frames are fixed-format commands).
pub fn decode(
    samples: &[Complex],
    detector: &mut EnergyDetector,
    expected_len: usize,
) -> Result<Vec<u8>, DownlinkError> {
    let comparator = detector.process(samples);
    let mut last_err = DownlinkError::NoSof;
    // The tag does not know the chip phase; try every comparator offset.
    for phase in 0..COMPARATOR_BITS_PER_CHIP {
        match decode_at_phase(&comparator[phase..], expected_len) {
            Ok(v) => return Ok(v),
            Err(e) => {
                // Prefer reporting the most "advanced" failure.
                if last_err == DownlinkError::NoSof {
                    last_err = e;
                }
            }
        }
    }
    Err(last_err)
}

fn decode_at_phase(comparator: &[bool], expected_len: usize) -> Result<Vec<u8>, DownlinkError> {
    // Majority-vote comparator groups into chips.
    let chips: Vec<bool> = comparator
        .chunks_exact(COMPARATOR_BITS_PER_CHIP)
        .map(|g| g.iter().filter(|&&b| b).count() * 2 > COMPARATOR_BITS_PER_CHIP)
        .collect();
    let sof_at = chips
        .windows(SOF.len())
        .position(|w| w == SOF)
        .ok_or(DownlinkError::NoSof)?;
    let mut at = sof_at + SOF.len();
    let total_bits = (expected_len + 1) * 8;
    let mut bits = Vec::with_capacity(total_bits);
    for _ in 0..total_bits {
        if at + 1 >= chips.len() {
            return Err(DownlinkError::Truncated);
        }
        match (chips[at], chips[at + 1]) {
            (true, false) => bits.push(true),
            (false, true) => bits.push(false),
            _ => return Err(DownlinkError::CodingViolation),
        }
        at += 2;
    }
    let bytes = backfi_coding::bits::bits_to_bytes_lsb(&bits);
    if !crc8_check(&bytes) {
        return Err(DownlinkError::BadCrc);
    }
    Ok(bytes[..expected_len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        let payload = vec![0x42, 0x13, 0xF0];
        let chips = encode(&payload);
        let samples = modulate(&chips, 1e-2);
        let mut det = EnergyDetector::new(-60.0);
        let got = decode(&samples, &mut det, payload.len()).unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn roundtrip_with_unaligned_leading_noise() {
        let payload = vec![0xAA; 8];
        let chips = encode(&payload);
        // 37 µs of silence → chip phase offset 12 of 25.
        let mut samples = vec![Complex::ZERO; 37 * SAMPLES_PER_BIT];
        samples.extend(modulate(&chips, 5e-3));
        let mut det = EnergyDetector::new(-60.0);
        assert_eq!(decode(&samples, &mut det, 8).unwrap(), payload);
    }

    #[test]
    fn majority_vote_tolerates_comparator_glitches() {
        let payload = vec![0x5A, 0xC3];
        let chips = encode(&payload);
        let mut samples = modulate(&chips, 1e-2);
        // Zero out 5 µs inside several mark chips (comparator glitches).
        for chip in [0usize, 6, 12] {
            let start = chip * COMPARATOR_BITS_PER_CHIP * SAMPLES_PER_BIT;
            for s in &mut samples[start..start + 5 * SAMPLES_PER_BIT] {
                *s = Complex::ZERO;
            }
        }
        let mut det = EnergyDetector::new(-60.0);
        assert_eq!(decode(&samples, &mut det, 2).unwrap(), payload);
    }

    #[test]
    fn sof_cannot_appear_in_manchester_data() {
        let payload: Vec<u8> = (0..=255u8).collect();
        let chips = encode(&payload);
        for w in chips[SOF.len()..].windows(3) {
            assert!(!(w[0] && w[1] && w[2]), "SOF-like run inside data");
        }
    }

    #[test]
    fn corruption_is_detected() {
        let payload = vec![1, 2, 3, 4];
        let mut chips = encode(&payload);
        let at = SOF.len() + 10;
        chips.swap(at, at + 1); // coherent Manchester flip → CRC must catch
        let samples = modulate(&chips, 1e-2);
        let mut det = EnergyDetector::new(-60.0);
        match decode(&samples, &mut det, 4) {
            Err(DownlinkError::BadCrc) | Err(DownlinkError::CodingViolation) => {}
            other => panic!("corruption slipped through: {other:?}"),
        }
    }

    #[test]
    fn missing_sof_reported() {
        let mut det = EnergyDetector::new(-60.0);
        let silence = vec![Complex::ZERO; 20_000];
        assert_eq!(decode(&silence, &mut det, 4), Err(DownlinkError::NoSof));
    }

    #[test]
    fn rate_is_20_kbps() {
        assert!((DOWNLINK_BPS - 20e3).abs() < 1.0);
        // End to end: a 100-byte frame occupies ≈ (101·8·2+4) chips × 25 µs.
        let payload = vec![0u8; 100];
        let chips = encode(&payload);
        let dur_s = chips.len() as f64 * COMPARATOR_BITS_PER_CHIP as f64 * 1e-6;
        let bps = (payload.len() * 8) as f64 / dur_s;
        assert!(bps > 18e3 && bps < 21e3, "downlink rate {bps}");
    }
}
