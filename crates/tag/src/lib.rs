//! # backfi-tag
//!
//! The BackFi IoT sensor (Fig. 2 of the paper): everything that runs on the
//! tag.
//!
//! * [`config`] — the tag's communication parameters (modulation, coding
//!   rate, symbol switching rate, preamble length),
//! * [`psk`] — Gray-coded n-PSK phase mapping,
//! * [`modulator`] — the RF switch-tree backscatter phase modulator (Fig. 3),
//! * [`detector`] — the wake-up energy detector and 16-bit preamble
//!   correlator (§4.1),
//! * [`framer`] — the tag packet: silent period, PN preamble, header,
//!   payload, CRC (Fig. 4),
//! * [`state`] — the tag's link-layer state machine, driven sample by sample,
//! * [`energy`] — the EPB/REPB energy model that reproduces the paper's
//!   Fig. 7 table.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod config;
pub mod detector;
pub mod downlink;
pub mod energy;
pub mod framer;
pub mod modulator;
pub mod psk;
pub mod state;

pub use config::{TagConfig, TagModulation};
pub use framer::TagFrame;
pub use state::Tag;
