//! The RF switch-tree backscatter phase modulator (Fig. 3 of the paper).
//!
//! A binary tree of SPDT switches routes the incident RF to one of `n`
//! short-circuited transmission-line stubs; the stub length sets the phase of
//! the reflection. We model the discrete phases (with a per-leaf fabrication
//! error from trace-length quantization), the switch-count bookkeeping that
//! the energy model charges for, and the number of switch *toggles* (dynamic
//! energy is consumed per toggle).

use crate::config::TagModulation;
use backfi_dsp::Complex;

/// A realized switch-tree modulator.
#[derive(Clone, Debug)]
pub struct SwitchTreeModulator {
    modulation: TagModulation,
    /// Reflection coefficient for each leaf (constellation index order).
    leaves: Vec<Complex>,
    /// Currently selected leaf.
    current: usize,
    toggles: u64,
    symbols: u64,
}

impl SwitchTreeModulator {
    /// Build a tree for `modulation`. `phase_error_rms_deg` models the trace
    /// length quantization of a real PCB (per-leaf deterministic offsets,
    /// derived from a small hash so they are reproducible without an RNG).
    pub fn new(modulation: TagModulation, phase_error_rms_deg: f64) -> Self {
        let order = modulation.order();
        let leaves = (0..order)
            .map(|i| {
                let nominal = 2.0 * std::f64::consts::PI * i as f64 / order as f64;
                // Deterministic pseudo-error in [-√3σ, +√3σ] (uniform, rms σ).
                let h = (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17);
                let u = (h as f64 / u64::MAX as f64) * 2.0 - 1.0;
                let err = u * 3f64.sqrt() * phase_error_rms_deg.to_radians();
                Complex::exp_j(nominal + err)
            })
            .collect();
        SwitchTreeModulator {
            modulation,
            leaves,
            current: 0,
            toggles: 0,
            symbols: 0,
        }
    }

    /// An ideal tree (no fabrication error).
    pub fn ideal(modulation: TagModulation) -> Self {
        Self::new(modulation, 0.0)
    }

    /// The modulation this tree implements.
    pub fn modulation(&self) -> TagModulation {
        self.modulation
    }

    /// Select the leaf whose nominal phase index is `idx`; returns the
    /// reflection coefficient that will be applied to the incident RF.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn select(&mut self, idx: usize) -> Complex {
        assert!(idx < self.leaves.len(), "phase index {idx} out of range");
        // Count how many SPDT control lines change between the two leaves:
        // the control word is the path through the binary tree, so toggles =
        // Hamming distance between leaf indices over the tree depth.
        let depth = self.leaves.len().trailing_zeros();
        let changed = ((self.current ^ idx) & ((1usize << depth) - 1)).count_ones();
        self.toggles += changed as u64;
        self.symbols += 1;
        self.current = idx;
        self.leaves[idx]
    }

    /// Reflection coefficient of a leaf without selecting it.
    pub fn coefficient(&self, idx: usize) -> Complex {
        self.leaves[idx]
    }

    /// Total SPDT control-line toggles so far (dynamic-energy proxy).
    pub fn toggles(&self) -> u64 {
        self.toggles
    }

    /// Symbols modulated so far.
    pub fn symbols(&self) -> u64 {
        self.symbols
    }

    /// Reset the toggle/symbol counters (e.g. per packet).
    pub fn reset_counters(&mut self) {
        self.toggles = 0;
        self.symbols = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_leaves_are_unit_roots() {
        for m in TagModulation::ALL {
            let t = SwitchTreeModulator::ideal(m);
            for i in 0..m.order() {
                let c = t.coefficient(i);
                assert!((c.abs() - 1.0).abs() < 1e-12);
                let expect = 2.0 * std::f64::consts::PI * i as f64 / m.order() as f64;
                let mut diff = (c.arg() - expect).rem_euclid(2.0 * std::f64::consts::PI);
                if diff > std::f64::consts::PI {
                    diff -= 2.0 * std::f64::consts::PI;
                }
                assert!(diff.abs() < 1e-12, "{m:?} leaf {i}");
            }
        }
    }

    #[test]
    fn phase_error_is_bounded_and_reproducible() {
        let a = SwitchTreeModulator::new(TagModulation::Psk16, 2.0);
        let b = SwitchTreeModulator::new(TagModulation::Psk16, 2.0);
        for i in 0..16 {
            assert_eq!(a.coefficient(i), b.coefficient(i));
            let nominal = 2.0 * std::f64::consts::PI * i as f64 / 16.0;
            let mut diff =
                (a.coefficient(i).arg() - nominal).rem_euclid(2.0 * std::f64::consts::PI);
            if diff > std::f64::consts::PI {
                diff -= 2.0 * std::f64::consts::PI;
            }
            assert!(
                diff.abs() < (2.0f64 * 3f64.sqrt()).to_radians() + 1e-9,
                "leaf {i}"
            );
        }
    }

    #[test]
    fn toggle_counting() {
        let mut t = SwitchTreeModulator::ideal(TagModulation::Qpsk);
        t.select(0); // no change from initial 0
        assert_eq!(t.toggles(), 0);
        t.select(3); // 00 -> 11: two control lines
        assert_eq!(t.toggles(), 2);
        t.select(2); // 11 -> 10: one line
        assert_eq!(t.toggles(), 3);
        assert_eq!(t.symbols(), 3);
        t.reset_counters();
        assert_eq!(t.toggles(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        SwitchTreeModulator::ideal(TagModulation::Bpsk).select(2);
    }
}
