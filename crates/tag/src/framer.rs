//! The tag uplink frame (Fig. 4 timeline).
//!
//! On-air structure once the tag has detected the AP's wake-up preamble:
//!
//! ```text
//! | silent 16 µs | PN preamble (32 or 96 µs, ±1 chips @ 1 µs) | payload symbols |
//! ```
//!
//! The byte stream inside the payload section is
//! `len(2) ‖ crc8(header) ‖ payload ‖ crc32(payload)`, convolutionally
//! encoded (terminated), optionally punctured to rate 2/3, then Gray-mapped
//! to n-PSK symbols. The tag backscatters for as long as the excitation
//! lasts, so the *frame length is implicit* — the reader decodes every symbol
//! that fits and uses the in-band header to find the payload boundary.

use crate::config::TagConfig;
use crate::psk::bits_to_phase;
use backfi_coding::bits::{bits_to_bytes_lsb, bytes_to_bits_lsb};
use backfi_coding::crc::{crc32_append, crc32_check, crc8, crc8_append};
use backfi_coding::prbs::Lfsr;
use backfi_coding::puncture::puncture;
use backfi_coding::ConvEncoder;

/// Silent period duration (µs) during which the reader estimates `h_env`.
pub const SILENT_US: f64 = 16.0;
/// Chip duration of the tag PN preamble (µs).
pub const PREAMBLE_CHIP_US: f64 = 1.0;
/// Known pilot symbols (constellation index 0) prepended to the payload so
/// the reader can anchor the absolute constellation phase — without it a
/// channel-estimate phase error of one constellation step at low SNR flips
/// every symbol consistently.
pub const PILOT_SYMBOLS: usize = 1;

/// Why parsing a decoded tag frame failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Too few bits to even hold the header.
    TooShort,
    /// Header CRC-8 failed.
    BadHeader,
    /// The announced length exceeds the decoded bits.
    LengthOutOfRange,
    /// Payload CRC-32 failed.
    BadPayload,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FrameError::TooShort => "decoded stream too short for a header",
            FrameError::BadHeader => "header CRC-8 mismatch",
            FrameError::LengthOutOfRange => "announced length exceeds decoded bits",
            FrameError::BadPayload => "payload CRC-32 mismatch",
        };
        f.write_str(s)
    }
}

impl std::error::Error for FrameError {}

/// Frame construction and parsing.
pub struct TagFrame;

impl TagFrame {
    /// The tag PN preamble as ±1 chips (one per µs). Drawn from a degree-7
    /// m-sequence — period 127 ≥ 96 chips, two-valued autocorrelation.
    pub fn preamble_chips(preamble_us: f64) -> Vec<f64> {
        let n = preamble_us.round() as usize;
        let mut l = Lfsr::maximal(7, 0x2B);
        l.bits(n)
            .into_iter()
            .map(|b| if b { 1.0 } else { -1.0 })
            .collect()
    }

    /// Information bit stream for a payload: header ‖ payload ‖ CRC-32.
    pub fn info_bits(payload: &[u8]) -> Vec<bool> {
        assert!(payload.len() <= u16::MAX as usize, "payload too long");
        let len = (payload.len() as u16).to_le_bytes();
        let header = crc8_append(&len); // 3 bytes
        let mut bytes = header;
        bytes.extend_from_slice(&crc32_append(payload));
        bytes_to_bits_lsb(&bytes)
    }

    /// Encode a payload to PSK constellation indices: a phase pilot, then the
    /// conv-encoded (terminated), punctured, Gray-mapped stream padded to a
    /// whole symbol.
    pub fn encode(payload: &[u8], cfg: &TagConfig) -> Vec<usize> {
        let bits = Self::info_bits(payload);
        let mut enc = ConvEncoder::ieee80211();
        let mother = enc.encode_terminated(&bits);
        let mut coded = puncture(&mother, cfg.code_rate);
        let bps = cfg.modulation.bits_per_symbol();
        while !coded.len().is_multiple_of(bps) {
            coded.push(false);
        }
        let mut out = vec![0usize; PILOT_SYMBOLS];
        out.extend(coded.chunks_exact(bps).map(|c| {
            let phase = bits_to_phase(cfg.modulation, c);
            // store the constellation index rather than the angle
            let order = cfg.modulation.order() as f64;
            ((phase / (2.0 * std::f64::consts::PI) * order).round() as usize)
                % cfg.modulation.order()
        }));
        out
    }

    /// Number of payload symbols [`TagFrame::encode`] will produce
    /// (including the phase pilot).
    pub fn symbol_count(payload_len: usize, cfg: &TagConfig) -> usize {
        let info = (3 + payload_len + 4) * 8; // header + payload + crc32
        let mother = (info + 6) * 2;
        let coded = match cfg.code_rate {
            backfi_coding::CodeRate::Half => mother,
            backfi_coding::CodeRate::TwoThirds => mother * 3 / 4,
            backfi_coding::CodeRate::ThreeQuarters => mother * 2 / 3,
        };
        PILOT_SYMBOLS + coded.div_ceil(cfg.modulation.bits_per_symbol())
    }

    /// Largest payload (bytes) whose frame fits in `airtime_us` of excitation
    /// after the silent period and preamble. Returns 0 when nothing fits.
    pub fn max_payload_bytes(cfg: &TagConfig, airtime_us: f64) -> usize {
        let data_us = airtime_us - SILENT_US - cfg.preamble_us;
        if data_us <= 0.0 {
            return 0;
        }
        let symbols =
            ((data_us * 1e-6 * cfg.symbol_rate_hz).floor() as usize).saturating_sub(PILOT_SYMBOLS);
        // Invert symbol_count: info bits available ≈ symbols·bps·rate − overhead.
        let coded_bits = symbols * cfg.modulation.bits_per_symbol();
        let mother = match cfg.code_rate {
            backfi_coding::CodeRate::Half => coded_bits,
            backfi_coding::CodeRate::TwoThirds => coded_bits * 4 / 3,
            backfi_coding::CodeRate::ThreeQuarters => coded_bits * 3 / 2,
        };
        let info = mother / 2;
        let bytes = info.saturating_sub(6) / 8; // tail bits
        bytes.saturating_sub(3 + 4) // header + crc32
    }

    /// Parse decoded (possibly over-long) information bits back into the
    /// payload. Extra trailing pad bits are ignored.
    pub fn parse(bits: &[bool]) -> Result<Vec<u8>, FrameError> {
        if bits.len() < 24 {
            return Err(FrameError::TooShort);
        }
        let header = bits_to_bytes_lsb(&bits[..24]);
        if crc8(&header[..2]) != header[2] {
            return Err(FrameError::BadHeader);
        }
        let len = u16::from_le_bytes([header[0], header[1]]) as usize;
        let need = 24 + (len + 4) * 8;
        if bits.len() < need {
            return Err(FrameError::LengthOutOfRange);
        }
        let body = bits_to_bytes_lsb(&bits[24..need]);
        if !crc32_check(&body) {
            return Err(FrameError::BadPayload);
        }
        Ok(body[..len].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TagModulation;
    use backfi_coding::CodeRate;

    #[test]
    fn info_bits_roundtrip() {
        let payload = vec![0x10, 0x32, 0x54, 0xAB];
        let bits = TagFrame::info_bits(&payload);
        assert_eq!(TagFrame::parse(&bits).unwrap(), payload);
    }

    #[test]
    fn parse_ignores_pad() {
        let payload: Vec<u8> = (0..50).collect();
        let mut bits = TagFrame::info_bits(&payload);
        bits.extend(std::iter::repeat_n(true, 17));
        assert_eq!(TagFrame::parse(&bits).unwrap(), payload);
    }

    #[test]
    fn parse_detects_corruption() {
        let payload = vec![1u8, 2, 3];
        let mut bits = TagFrame::info_bits(&payload);
        // corrupt header
        bits[0] = !bits[0];
        assert!(matches!(
            TagFrame::parse(&bits),
            Err(FrameError::BadHeader) | Err(FrameError::LengthOutOfRange)
        ));
        // corrupt payload only
        let mut bits2 = TagFrame::info_bits(&payload);
        bits2[30] = !bits2[30];
        assert_eq!(TagFrame::parse(&bits2), Err(FrameError::BadPayload));
        assert_eq!(TagFrame::parse(&[true; 10]), Err(FrameError::TooShort));
    }

    #[test]
    fn encode_symbol_count_matches_prediction() {
        for m in TagModulation::ALL {
            for r in [CodeRate::Half, CodeRate::TwoThirds] {
                let cfg = TagConfig {
                    modulation: m,
                    code_rate: r,
                    symbol_rate_hz: 1e6,
                    preamble_us: 32.0,
                };
                let payload = vec![0xCD; 37];
                let symbols = TagFrame::encode(&payload, &cfg);
                assert_eq!(
                    symbols.len(),
                    TagFrame::symbol_count(payload.len(), &cfg),
                    "{m:?} {}",
                    r.label()
                );
                assert!(symbols.iter().all(|&s| s < m.order()));
            }
        }
    }

    #[test]
    fn preamble_chips_are_pm_one() {
        for us in [32.0, 96.0] {
            let chips = TagFrame::preamble_chips(us);
            assert_eq!(chips.len(), us as usize);
            assert!(chips.iter().all(|&c| c == 1.0 || c == -1.0));
        }
        // deterministic
        assert_eq!(
            TagFrame::preamble_chips(32.0),
            TagFrame::preamble_chips(32.0)
        );
    }

    #[test]
    fn max_payload_roundtrip() {
        let cfg = TagConfig::default(); // QPSK 1/2 @ 1 MSPS
        let airtime = 1000.0; // 1 ms excitation
        let max = TagFrame::max_payload_bytes(&cfg, airtime);
        assert!(max > 50, "max {max}");
        // A frame of exactly that size must fit in the available symbols.
        let symbols = TagFrame::symbol_count(max, &cfg);
        let avail = ((airtime - SILENT_US - cfg.preamble_us) * 1e-6 * cfg.symbol_rate_hz) as usize;
        assert!(symbols <= avail, "{symbols} > {avail}");
        // And one more byte must not.
        assert!(TagFrame::symbol_count(max + 2, &cfg) > avail);
    }

    #[test]
    fn max_payload_zero_for_tiny_excitation() {
        let cfg = TagConfig::default();
        assert_eq!(TagFrame::max_payload_bytes(&cfg, 40.0), 0);
    }
}
