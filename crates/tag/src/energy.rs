//! The tag energy model: Energy-per-Bit (EPB) and Relative EPB (REPB).
//!
//! §5.2.1 of the paper decomposes tag energy as
//! `EPB = EPB_mem + EPB_mod + EPB_enc`, each with a dynamic part (charged per
//! operation) and a static part charged per symbol period `Ts`
//! ("EPB_mem = EPB_mem,read + P_mem,static × Ts"). The constants below were
//! fitted to the paper's own Fig. 7 table (derived from the ADG904 modulator
//! and CY62146EV30 SRAM datasheets); with them this module reproduces every
//! REPB entry of Fig. 7 to better than 1 %.
//!
//! Fitted decomposition (per information bit, `s` = SPDT switch count,
//! `b` = bits/symbol, `r` = code rate, `Ts` = symbol period):
//!
//! ```text
//! EPB [pJ] = 0.432 + 0.910·s/(b·r)  +  (0.786 + 0.056·s/(b·r)) [µW] · Ts
//! ```

use crate::config::{TagConfig, TagModulation};
use backfi_coding::CodeRate;

/// Dynamic memory-read energy per information bit, pJ.
pub const MEM_DYNAMIC_PJ: f64 = 0.432;
/// Dynamic modulator energy per switch per symbol, pJ (spread over the
/// `b·r` information bits a symbol carries).
pub const MOD_DYNAMIC_PJ_PER_SWITCH: f64 = 0.910;
/// Static power independent of the modulator, µW (memory + encoder + misc).
pub const STATIC_BASE_UW: f64 = 0.786;
/// Static power per switch (scaled like the dynamic term), µW.
pub const STATIC_PER_SWITCH_UW: f64 = 0.056;

/// The paper's reference configuration: BPSK, rate 1/2, 1 MSPS.
pub fn reference_config() -> TagConfig {
    TagConfig {
        modulation: TagModulation::Bpsk,
        code_rate: CodeRate::Half,
        symbol_rate_hz: 1e6,
        preamble_us: 32.0,
    }
}

/// Reference EPB in pJ/bit ("we computed the EPB for this reference case to
/// be 3.15 pJ/bit", §5.2.1).
pub const REFERENCE_EPB_PJ: f64 = 3.15;

/// Absolute energy per information bit in pJ for a configuration.
pub fn epb_pj(cfg: &TagConfig) -> f64 {
    let s = cfg.modulation.spdt_switches() as f64;
    let b = cfg.modulation.bits_per_symbol() as f64;
    let r = cfg.code_rate.as_f64();
    let load = s / (b * r);
    let ts_us = 1e6 / cfg.symbol_rate_hz;
    let dynamic = MEM_DYNAMIC_PJ + MOD_DYNAMIC_PJ_PER_SWITCH * load;
    let static_uw = STATIC_BASE_UW + STATIC_PER_SWITCH_UW * load;
    dynamic + static_uw * ts_us
}

/// Relative EPB: EPB normalized by the reference configuration's EPB
/// (the unit-less quantity of Fig. 7).
pub fn repb(cfg: &TagConfig) -> f64 {
    epb_pj(cfg) / epb_pj(&reference_config())
}

/// One row of the Fig. 7 table: REPB and throughput for each
/// (modulation, code-rate) column at a fixed symbol rate.
#[derive(Clone, Debug)]
pub struct Fig7Row {
    /// Symbol switching rate, Hz.
    pub symbol_rate_hz: f64,
    /// `(label, repb, throughput_bps)` per column, in the paper's order:
    /// BPSK 1/2, BPSK 2/3, QPSK 1/2, QPSK 2/3, 16PSK 1/2, 16PSK 2/3.
    pub columns: Vec<(String, f64, f64)>,
}

/// Generate the full Fig. 7 table.
pub fn fig7_table() -> Vec<Fig7Row> {
    crate::config::TAG_SYMBOL_RATES
        .iter()
        .map(|&symbol_rate_hz| {
            let mut columns = Vec::new();
            for modulation in TagModulation::ALL {
                for code_rate in crate::config::TAG_CODE_RATES {
                    let cfg = TagConfig {
                        modulation,
                        code_rate,
                        symbol_rate_hz,
                        preamble_us: 32.0,
                    };
                    columns.push((
                        format!("{} {}", modulation.label(), code_rate.label()),
                        repb(&cfg),
                        cfg.throughput_bps(),
                    ));
                }
            }
            Fig7Row {
                symbol_rate_hz,
                columns,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(m: TagModulation, r: CodeRate, f: f64) -> TagConfig {
        TagConfig {
            modulation: m,
            code_rate: r,
            symbol_rate_hz: f,
            preamble_us: 32.0,
        }
    }

    /// The complete Fig. 7 REPB table from the paper.
    const PAPER_FIG7: [(f64, [f64; 6]); 6] = [
        (10e3, [29.2162, 28.1984, 31.2517, 29.7250, 40.4117, 36.5951]),
        (100e3, [3.5651, 3.3333, 4.0287, 3.6810, 6.1151, 5.2458]),
        (500e3, [1.2850, 1.1231, 1.6089, 1.3660, 3.0665, 2.4592]),
        (1e6, [1.0000, 0.8468, 1.3064, 1.0766, 2.6855, 2.1109]),
        (2e6, [0.8575, 0.7086, 1.1552, 0.9319, 2.4949, 1.9367]),
        (2.5e6, [0.8290, 0.6810, 1.1250, 0.9030, 2.4568, 1.9019]),
    ];

    #[test]
    fn reference_epb_is_315() {
        assert!((epb_pj(&reference_config()) - REFERENCE_EPB_PJ).abs() < 0.005);
        assert!((repb(&reference_config()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reproduces_fig7_within_one_percent() {
        let mods = [
            (TagModulation::Bpsk, CodeRate::Half),
            (TagModulation::Bpsk, CodeRate::TwoThirds),
            (TagModulation::Qpsk, CodeRate::Half),
            (TagModulation::Qpsk, CodeRate::TwoThirds),
            (TagModulation::Psk16, CodeRate::Half),
            (TagModulation::Psk16, CodeRate::TwoThirds),
        ];
        for &(f, ref row) in &PAPER_FIG7 {
            for (col, &(m, r)) in mods.iter().enumerate() {
                let got = repb(&cfg(m, r, f));
                let want = row[col];
                let err = (got - want).abs() / want;
                assert!(
                    err < 0.01,
                    "f={f} {m:?} {}: got {got:.4} want {want:.4} ({:.2}%)",
                    r.label(),
                    err * 100.0
                );
            }
        }
    }

    #[test]
    fn throughput_matches_fig7() {
        // Spot-check the throughput rows of Fig. 7.
        assert!(
            (cfg(TagModulation::Psk16, CodeRate::Half, 2e6).throughput_bps() - 4e6).abs() < 1.0
        );
        assert!(
            (cfg(TagModulation::Qpsk, CodeRate::TwoThirds, 1e6).throughput_bps() - 1.3333e6).abs()
                < 100.0
        );
    }

    #[test]
    fn static_power_dominates_at_low_rates() {
        // §5.2.1: reducing symbol rate increases EPB because static power
        // burns for longer per bit.
        let slow = epb_pj(&cfg(TagModulation::Bpsk, CodeRate::Half, 10e3));
        let fast = epb_pj(&cfg(TagModulation::Bpsk, CodeRate::Half, 2.5e6));
        assert!(slow > 20.0 * fast);
    }

    #[test]
    fn repb_monotone_in_symbol_rate() {
        for m in TagModulation::ALL {
            for r in crate::config::TAG_CODE_RATES {
                let mut prev = f64::INFINITY;
                for &f in &crate::config::TAG_SYMBOL_RATES {
                    let v = repb(&cfg(m, r, f));
                    assert!(v < prev, "{m:?} {} {f}", r.label());
                    prev = v;
                }
            }
        }
    }

    #[test]
    fn higher_rate_code_lowers_epb() {
        // §6.1: "going from (QPSK, 1/2) to (QPSK, 2/3) results in a decrease
        // in REPB" — the throughput gain outweighs the coding energy.
        for &f in &crate::config::TAG_SYMBOL_RATES {
            let half = repb(&cfg(TagModulation::Qpsk, CodeRate::Half, f));
            let two3 = repb(&cfg(TagModulation::Qpsk, CodeRate::TwoThirds, f));
            assert!(two3 < half, "f={f}");
        }
    }

    #[test]
    fn table_generator_shape() {
        let t = fig7_table();
        assert_eq!(t.len(), 6);
        for row in &t {
            assert_eq!(row.columns.len(), 6);
        }
        // Throughput increases left to right in each row.
        for row in &t {
            for w in row.columns.windows(2) {
                assert!(w[1].2 > w[0].2);
            }
        }
    }
}
