//! The tag's link-layer state machine (Fig. 4), driven sample by sample.
//!
//! The tag watches the incident RF through its energy detector; when it
//! recognizes the AP's 16-bit wake-up preamble it runs the protocol:
//! 16 µs silent (absorbing), then its PN preamble, then payload symbols until
//! its data (or the excitation) runs out. The only output of the tag is its
//! per-sample reflection coefficient Γ — everything else (what the reader
//! sees) is physics handled by `backfi-chan`.

use crate::config::TagConfig;
use crate::detector::{EnergyDetector, PreambleCorrelator, SAMPLES_PER_BIT};
use crate::framer::{TagFrame, SILENT_US};
use crate::modulator::SwitchTreeModulator;
use backfi_dsp::{us_to_samples, Complex};

/// Current protocol state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagState {
    /// No data to send; not reacting (absorbing).
    Sleep,
    /// Data loaded; watching for the AP wake-up preamble.
    Listening,
    /// Detected; absorbing for 16 µs while the reader estimates `h_env`.
    Silent,
    /// Backscattering the PN preamble.
    Preamble,
    /// Backscattering payload symbols.
    Payload,
    /// Frame complete; absorbing until re-armed.
    Done,
}

/// A BackFi tag.
#[derive(Clone, Debug)]
pub struct Tag {
    /// Tag identifier (selects its wake-up preamble).
    pub id: u16,
    cfg: TagConfig,
    state: TagState,
    detector: EnergyDetector,
    correlator: PreambleCorrelator,
    modulator: SwitchTreeModulator,
    /// Encoded payload symbols (constellation indices).
    symbols: Vec<usize>,
    /// Preamble chips (±1).
    chips: Vec<f64>,
    /// Sample countdown/cursor within the current state.
    cursor: usize,
    samples_per_symbol: usize,
}

impl Tag {
    /// Create a tag with the given id and configuration. Starts in `Sleep`.
    pub fn new(id: u16, cfg: TagConfig) -> Self {
        let pattern = backfi_coding::prbs::tag_preamble(id);
        Tag {
            id,
            cfg,
            state: TagState::Sleep,
            detector: EnergyDetector::default_sensitivity(),
            correlator: PreambleCorrelator::new(pattern, 15),
            modulator: SwitchTreeModulator::new(cfg.modulation, 1.5),
            symbols: Vec::new(),
            chips: TagFrame::preamble_chips(cfg.preamble_us),
            cursor: 0,
            samples_per_symbol: cfg.samples_per_symbol(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TagConfig {
        &self.cfg
    }

    /// Current protocol state.
    pub fn state(&self) -> TagState {
        self.state
    }

    /// Load sensor data; the tag wakes from `Sleep` to `Listening`
    /// ("if it has sufficient data to transmit, the tag wakes up and listens
    /// for its preamble", §4.1).
    pub fn load_data(&mut self, payload: &[u8]) {
        self.symbols = TagFrame::encode(payload, &self.cfg);
        self.state = TagState::Listening;
        self.cursor = 0;
        self.detector.reset();
        self.correlator.reset();
    }

    /// Re-arm after `Done` without changing the loaded data (for repeated
    /// transmissions of the same frame in experiments).
    pub fn rearm(&mut self) {
        if !self.symbols.is_empty() {
            self.state = TagState::Listening;
            self.cursor = 0;
            self.detector.reset();
            self.correlator.reset();
        }
    }

    /// Feed the incident baseband samples the tag's antenna sees; returns the
    /// reflection coefficient Γ the tag applies to each of those samples.
    pub fn react(&mut self, incident: &[Complex]) -> Vec<Complex> {
        let mut gamma = Vec::with_capacity(incident.len());
        for chunk in ChunkIter::new(incident) {
            match self.state {
                TagState::Sleep | TagState::Done => {
                    gamma.extend(std::iter::repeat_n(Complex::ZERO, chunk.len()));
                }
                TagState::Listening => {
                    // Sample-exact: a comparator bit completes every 20th
                    // sample; the state transition happens at precisely that
                    // sample so caller chunking cannot shift the timeline.
                    let mut taken = 0;
                    let mut matched = false;
                    for (i, &s) in chunk.iter().enumerate() {
                        for b in self.detector.process(std::slice::from_ref(&s)) {
                            if self.correlator.push(b) {
                                matched = true;
                            }
                        }
                        gamma.push(Complex::ZERO);
                        taken = i + 1;
                        if matched {
                            break;
                        }
                    }
                    if matched {
                        self.state = TagState::Silent;
                        self.cursor = us_to_samples(SILENT_US);
                        if taken < chunk.len() {
                            gamma.extend(self.react(&chunk[taken..]));
                        }
                    }
                }
                TagState::Silent => {
                    let take = chunk.len().min(self.cursor);
                    gamma.extend(std::iter::repeat_n(Complex::ZERO, take));
                    self.cursor -= take;
                    if self.cursor == 0 {
                        self.state = TagState::Preamble;
                    }
                    // Feed any remaining samples of this chunk recursively.
                    if take < chunk.len() {
                        gamma.extend(self.react(&chunk[take..]));
                    }
                }
                TagState::Preamble => {
                    let chip_samples = us_to_samples(crate::framer::PREAMBLE_CHIP_US);
                    let total = self.chips.len() * chip_samples;
                    let mut taken = 0;
                    while taken < chunk.len() && self.cursor < total {
                        let chip = self.chips[self.cursor / chip_samples];
                        gamma.push(Complex::real(chip));
                        self.cursor += 1;
                        taken += 1;
                    }
                    if self.cursor >= total {
                        self.state = TagState::Payload;
                        self.cursor = 0;
                    }
                    if taken < chunk.len() {
                        gamma.extend(self.react(&chunk[taken..]));
                    }
                }
                TagState::Payload => {
                    let total = self.symbols.len() * self.samples_per_symbol;
                    let mut taken = 0;
                    let mut last_sym = usize::MAX;
                    while taken < chunk.len() && self.cursor < total {
                        let sym = self.cursor / self.samples_per_symbol;
                        if sym != last_sym {
                            // One switch-tree selection per symbol.
                            self.modulator.select(self.symbols[sym]);
                            last_sym = sym;
                        }
                        gamma.push(self.modulator.coefficient(self.symbols[sym]));
                        self.cursor += 1;
                        taken += 1;
                    }
                    if self.cursor >= total {
                        self.state = TagState::Done;
                    }
                    if taken < chunk.len() {
                        gamma.extend(self.react(&chunk[taken..]));
                    }
                }
            }
        }
        gamma
    }

    /// Switch toggles so far (for energy accounting).
    pub fn switch_toggles(&self) -> u64 {
        self.modulator.toggles()
    }

    /// Number of payload symbols in the loaded frame.
    pub fn frame_symbols(&self) -> usize {
        self.symbols.len()
    }
}

/// Helper that yields the input in µs-aligned chunks so the detector's
/// decisions land on the same boundaries regardless of caller chunking.
struct ChunkIter<'a> {
    data: &'a [Complex],
    pos: usize,
}

impl<'a> ChunkIter<'a> {
    fn new(data: &'a [Complex]) -> Self {
        ChunkIter { data, pos: 0 }
    }
}

impl<'a> Iterator for ChunkIter<'a> {
    type Item = &'a [Complex];
    fn next(&mut self) -> Option<&'a [Complex]> {
        if self.pos >= self.data.len() {
            return None;
        }
        let end = (self.pos + SAMPLES_PER_BIT).min(self.data.len());
        let chunk = &self.data[self.pos..end];
        self.pos = end;
        Some(chunk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backfi_coding::prbs::tag_preamble;

    /// Build an excitation: idle, then the AP pulse preamble for this tag,
    /// then `data_us` of constant excitation.
    fn excitation(tag_id: u16, amp: f64, data_us: f64) -> Vec<Complex> {
        let mut v = vec![Complex::ZERO; 100];
        for &b in &tag_preamble(tag_id) {
            let level = if b { amp } else { 0.0 };
            v.extend((0..SAMPLES_PER_BIT).map(|_| Complex::real(level)));
        }
        v.extend((0..us_to_samples(data_us)).map(|i| Complex::from_polar(amp, i as f64 * 0.3)));
        v
    }

    #[test]
    fn full_protocol_sequence() {
        let cfg = TagConfig::default();
        let mut tag = Tag::new(3, cfg);
        assert_eq!(tag.state(), TagState::Sleep);
        tag.load_data(&[0xAA; 20]);
        assert_eq!(tag.state(), TagState::Listening);

        let x = excitation(3, 1e-2, 400.0);
        let gamma = tag.react(&x);
        assert_eq!(gamma.len(), x.len());
        assert_eq!(tag.state(), TagState::Done);

        // Find where modulation starts: first nonzero gamma.
        let first = gamma
            .iter()
            .position(|g| g.abs() > 0.0)
            .expect("tag reflected");
        // Everything before it is silent; the preamble follows for 32 µs.
        let pre_len = us_to_samples(cfg.preamble_us);
        #[allow(clippy::needless_range_loop)] // i names the absolute sample index
        for i in first..first + pre_len {
            assert!((gamma[i].abs() - 1.0).abs() < 1e-9, "preamble sample {i}");
            assert!(gamma[i].im.abs() < 1e-9, "preamble must be ±1");
        }
        // Payload symbols follow.
        let sym0 = gamma[first + pre_len];
        assert!((sym0.abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn silent_period_is_16us() {
        let cfg = TagConfig::default();
        let mut tag = Tag::new(1, cfg);
        tag.load_data(&[1, 2, 3]);
        let x = excitation(1, 1e-2, 200.0);
        let gamma = tag.react(&x);
        let first_reflect = gamma.iter().position(|g| g.abs() > 0.0).unwrap();
        // The match completes on the last preamble bit; silence follows.
        // Detection happens within a bit of the preamble end = 100 + 16*20.
        let preamble_end = 100 + 16 * SAMPLES_PER_BIT;
        let silent = first_reflect - preamble_end;
        let expect = us_to_samples(SILENT_US);
        assert!(
            (silent as i64 - expect as i64).unsigned_abs() <= SAMPLES_PER_BIT as u64,
            "silent gap {silent} vs {expect}"
        );
    }

    #[test]
    fn ignores_other_tags_preamble() {
        let mut tag = Tag::new(5, TagConfig::default());
        tag.load_data(&[9; 8]);
        let x = excitation(6, 1e-2, 200.0); // wrong id
        let gamma = tag.react(&x);
        assert!(gamma.iter().all(|g| g.abs() == 0.0));
        assert_eq!(tag.state(), TagState::Listening);
    }

    #[test]
    fn sleeping_tag_never_reflects() {
        let mut tag = Tag::new(2, TagConfig::default());
        let x = excitation(2, 1e-2, 100.0);
        let gamma = tag.react(&x);
        assert!(gamma.iter().all(|g| g.abs() == 0.0));
    }

    #[test]
    fn weak_excitation_below_sensitivity_is_ignored() {
        let mut tag = Tag::new(4, TagConfig::default());
        tag.load_data(&[7; 4]);
        let x = excitation(4, 1e-5, 100.0); // −100 dBm-ish
        tag.react(&x);
        assert_eq!(tag.state(), TagState::Listening);
    }

    #[test]
    fn chunked_reaction_matches_block() {
        let cfg = TagConfig::default();
        let x = excitation(7, 1e-2, 150.0);
        let mut a = Tag::new(7, cfg);
        a.load_data(&[3; 10]);
        let block = a.react(&x);
        let mut b = Tag::new(7, cfg);
        b.load_data(&[3; 10]);
        let mut chunked = Vec::new();
        for c in x.chunks(33) {
            chunked.extend(b.react(c));
        }
        assert_eq!(block, chunked);
    }

    #[test]
    fn rearm_allows_second_frame() {
        let cfg = TagConfig::default();
        let mut tag = Tag::new(8, cfg);
        tag.load_data(&[1; 10]);
        let x = excitation(8, 1e-2, 300.0);
        tag.react(&x);
        assert_eq!(tag.state(), TagState::Done);
        tag.rearm();
        assert_eq!(tag.state(), TagState::Listening);
        let gamma = tag.react(&x);
        assert!(gamma.iter().any(|g| g.abs() > 0.0));
    }
}
