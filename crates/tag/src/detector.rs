//! The tag's wake-up energy detector (§4.1).
//!
//! "The design has an envelope detector, a peak finder, a set-threshold
//! circuit and a comparator. … The comparator outputs a bit decision every
//! microsecond. … digital logic correlates the detected 16-bit long sequence
//! over sliding windows with the known preamble."
//!
//! Modelled after the sub-µW wake-up radios the paper cites ([40, 18]):
//! detection works down to a configurable sensitivity (−50 dBm by default,
//! between the −41 and −56 dBm the cited designs achieve).

use backfi_dsp::correlate::bit_correlation;
use backfi_dsp::Complex;

/// Samples per comparator decision (1 µs at 20 MHz).
pub const SAMPLES_PER_BIT: usize = 20;

/// The envelope → peak-hold → threshold → comparator pipeline.
#[derive(Clone, Debug)]
pub struct EnergyDetector {
    /// Minimum detectable envelope power (linear, simulator units).
    sensitivity: f64,
    /// Peak-hold state (decays slowly like a real peak detector).
    peak: f64,
    /// Leftover samples not yet forming a full 1 µs block.
    pending: Vec<Complex>,
}

impl EnergyDetector {
    /// Create a detector with the given sensitivity in dBm.
    pub fn new(sensitivity_dbm: f64) -> Self {
        EnergyDetector {
            sensitivity: 10f64.powf(sensitivity_dbm / 10.0),
            peak: 0.0,
            pending: Vec::new(),
        }
    }

    /// Default −50 dBm sensitivity (between the −41 and −56 dBm of the
    /// cited wake-up radio designs), enough to arm the tag out to ~7 m.
    pub fn default_sensitivity() -> Self {
        Self::new(-50.0)
    }

    /// Feed incident samples; returns one bit per completed microsecond.
    /// A `true` bit means "energy above half the held peak".
    pub fn process(&mut self, incident: &[Complex]) -> Vec<bool> {
        let mut bits = Vec::new();
        self.pending.extend_from_slice(incident);
        let full = self.pending.len() / SAMPLES_PER_BIT;
        for blk in 0..full {
            let chunk = &self.pending[blk * SAMPLES_PER_BIT..(blk + 1) * SAMPLES_PER_BIT];
            let p: f64 = chunk.iter().map(|v| v.norm_sqr()).sum::<f64>() / SAMPLES_PER_BIT as f64;
            // Peak hold with slow decay (~1% per µs).
            self.peak = (self.peak * 0.99).max(p);
            let threshold = (self.peak / 2.0).max(self.sensitivity);
            bits.push(p >= threshold && p >= self.sensitivity);
        }
        self.pending.drain(..full * SAMPLES_PER_BIT);
        bits
    }

    /// Reset all state (new listening session).
    pub fn reset(&mut self) {
        self.peak = 0.0;
        self.pending.clear();
    }
}

/// Sliding 16-bit preamble correlator.
#[derive(Clone, Debug)]
pub struct PreambleCorrelator {
    pattern: Vec<bool>,
    window: Vec<bool>,
    /// Minimum agreement score (out of `pattern.len()`) to declare a match.
    min_score: i32,
}

impl PreambleCorrelator {
    /// Create a correlator for `pattern`, requiring at least `min_matches`
    /// agreeing bits (e.g. 15 of 16).
    ///
    /// # Panics
    /// Panics if the pattern is empty or `min_matches > pattern.len()`.
    pub fn new(pattern: Vec<bool>, min_matches: usize) -> Self {
        assert!(!pattern.is_empty(), "empty preamble pattern");
        assert!(min_matches <= pattern.len(), "min_matches too large");
        let min_score = (2 * min_matches) as i32 - pattern.len() as i32;
        PreambleCorrelator {
            pattern,
            window: Vec::new(),
            min_score,
        }
    }

    /// Push comparator bits one at a time; returns `true` on the bit that
    /// completes a match.
    pub fn push(&mut self, bit: bool) -> bool {
        self.window.push(bit);
        if self.window.len() > self.pattern.len() {
            self.window.remove(0);
        }
        if self.window.len() == self.pattern.len() {
            bit_correlation(&self.window, &self.pattern) >= self.min_score
        } else {
            false
        }
    }

    /// Clear the sliding window.
    pub fn reset(&mut self) {
        self.window.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pulses(bits: &[bool], amp: f64) -> Vec<Complex> {
        let mut v = Vec::new();
        for &b in bits {
            let level = if b { amp } else { 0.0 };
            v.extend((0..SAMPLES_PER_BIT).map(|i| Complex::from_polar(level, i as f64 * 0.7)));
        }
        v
    }

    #[test]
    fn recovers_pulse_pattern() {
        let pattern = [true, false, true, true, false, false, true, false];
        let mut det = EnergyDetector::new(-60.0);
        // amplitude well above sensitivity
        let rx = pulses(&pattern, 1e-2);
        let bits = det.process(&rx);
        assert_eq!(&bits[..], &pattern[..]);
    }

    #[test]
    fn below_sensitivity_is_silent() {
        let pattern = [true; 8];
        let mut det = EnergyDetector::new(-40.0);
        let rx = pulses(&pattern, 1e-4); // -80 dBm power
        let bits = det.process(&rx);
        assert!(bits.iter().all(|&b| !b));
    }

    #[test]
    fn chunked_processing_matches_block() {
        let pattern = [true, true, false, true, false, true, true, false];
        let rx = pulses(&pattern, 5e-3);
        let mut a = EnergyDetector::new(-60.0);
        let block = a.process(&rx);
        let mut b = EnergyDetector::new(-60.0);
        let mut chunked = Vec::new();
        for chunk in rx.chunks(13) {
            chunked.extend(b.process(chunk));
        }
        assert_eq!(block, chunked);
    }

    #[test]
    fn correlator_finds_pattern_in_stream() {
        let pattern = backfi_coding::prbs::default_ap_preamble();
        let mut c = PreambleCorrelator::new(pattern.clone(), 16);
        // noise bits then the pattern
        let mut hits = 0;
        for &b in [true, false, false, true, true, false]
            .iter()
            .chain(pattern.iter())
        {
            if c.push(b) {
                hits += 1;
            }
        }
        assert_eq!(hits, 1);
    }

    #[test]
    fn correlator_tolerates_one_error_at_15_of_16() {
        let pattern = backfi_coding::prbs::default_ap_preamble();
        let mut flipped = pattern.clone();
        flipped[7] = !flipped[7];
        let mut c = PreambleCorrelator::new(pattern, 15);
        let mut hit = false;
        for &b in &flipped {
            hit |= c.push(b);
        }
        assert!(hit);
    }

    #[test]
    fn correlator_rejects_wrong_tag_pattern() {
        // Per-tag addressing (§4.1): tag 2's correlator must not fire on
        // tag 1's preamble.
        let p1 = backfi_coding::prbs::tag_preamble(1);
        let p2 = backfi_coding::prbs::tag_preamble(2);
        let mut c = PreambleCorrelator::new(p2, 15);
        let mut hit = false;
        for &b in &p1 {
            hit |= c.push(b);
        }
        assert!(!hit);
    }

    #[test]
    fn peak_hold_adapts_threshold() {
        // After a strong pulse, a half-amplitude pulse still reads as 1
        // (threshold = peak/2), but a tenth-amplitude pulse reads 0.
        let mut det = EnergyDetector::new(-80.0);
        let strong = pulses(&[true], 1e-2);
        let half = pulses(&[true], (0.6e-4f64).sqrt()); // power 0.6e-4 ≥ peak/2? peak=1e-4
        let weak = pulses(&[true], 1e-3); // power 1e-6 « peak/2
        det.process(&strong);
        assert_eq!(det.process(&half), vec![true]);
        assert_eq!(det.process(&weak), vec![false]);
    }
}
