//! Link-layer protocol properties (Fig. 4) across crates.

use backfi::core::excitation::{Excitation, ExcitationConfig};
use backfi::prelude::*;
use backfi::tag::state::TagState;
use backfi_dsp::fir::filter;

fn scene(tag_id: u16, excitation_tag: u16) -> (Excitation, Tag, Vec<backfi::dsp::Complex>) {
    let exc = Excitation::build(ExcitationConfig {
        tag_id: excitation_tag,
        wifi_payload_bytes: 800,
        ..Default::default()
    });
    let budget = LinkBudget::default();
    let a = budget.tx_power().sqrt();
    let xs: Vec<_> = exc.samples.iter().map(|&v| v * a).collect();
    // Tag at 1 m.
    let leg = backfi::chan::budget::dbm_to_lin(-budget.backscatter_pathloss_db(1.0) / 2.0).sqrt();
    let h_f = vec![backfi::dsp::Complex::real(leg)];
    let incident = filter(&h_f, &xs);
    let mut tag = Tag::new(tag_id, TagConfig::default());
    tag.load_data(&[0x55; 16]);
    (exc, tag, incident)
}

#[test]
fn tag_follows_the_fig4_timeline() {
    let (exc, mut tag, incident) = scene(1, 1);
    let gamma = tag.react(&incident);
    assert_eq!(tag.state(), TagState::Done);

    // Silent until ≈16 µs after the pulse preamble ends.
    let first = gamma.iter().position(|g| g.abs() > 0.0).unwrap();
    let expected = exc.detect_end + backfi_dsp::us_to_samples(16.0);
    assert!(
        (first as i64 - expected as i64).unsigned_abs() <= 40,
        "reflection starts at {first}, expected ≈{expected}"
    );

    // 32 µs of ±1 preamble chips follow.
    #[allow(clippy::needless_range_loop)] // i names the absolute sample index
    for i in first..first + backfi_dsp::us_to_samples(32.0) {
        assert!(gamma[i].im.abs() < 1e-9, "preamble must be BPSK chips");
    }
}

#[test]
fn per_tag_addressing_selects_exactly_one_tag() {
    // §4.1: "a preamble can be unique to a particular BackFi tag … and can be
    // used to select which BackFi tag gets to backscatter."
    let (_, mut tag_right, incident) = scene(3, 3);
    let g = tag_right.react(&incident);
    assert!(g.iter().any(|v| v.abs() > 0.0), "addressed tag must answer");

    let (_, mut tag_wrong, incident2) = scene(4, 3);
    let g2 = tag_wrong.react(&incident2);
    assert!(
        g2.iter().all(|v| v.abs() == 0.0),
        "other tags must stay silent"
    );
    assert_eq!(tag_wrong.state(), TagState::Listening);
}

#[test]
fn cts_to_self_reserves_the_whole_exchange() {
    let exc = Excitation::build(ExcitationConfig::default());
    // The CTS PSDU is embedded in the transmission; re-parse it.
    let rx = WifiReceiver::default();
    let got = rx.receive(&exc.samples).expect("decode CTS");
    let frame = backfi::wifi::mac::Frame::from_psdu(&got.psdu).expect("parse CTS");
    match frame {
        backfi::wifi::mac::Frame::CtsToSelf { duration_us, .. } => {
            // NAV must cover the pulse preamble + data packet.
            let needed = exc.data_airtime_us() + 16.0;
            assert!(
                duration_us as f64 >= needed,
                "NAV {duration_us} µs < needed {needed} µs"
            );
        }
        other => panic!("expected CTS, parsed {other:?}"),
    }
}

#[test]
fn silent_window_is_truly_silent() {
    let (exc, mut tag, incident) = scene(1, 1);
    let gamma = tag.react(&incident);
    let silent = exc.detect_end..exc.detect_end + backfi_dsp::us_to_samples(16.0) - 20;
    for i in silent {
        assert!(
            gamma[i].abs() == 0.0,
            "tag reflected during the silent window at {i}"
        );
    }
}

#[test]
fn done_tag_stays_quiet_until_rearmed() {
    let (_, mut tag, incident) = scene(1, 1);
    tag.react(&incident);
    assert_eq!(tag.state(), TagState::Done);
    let again = tag.react(&incident);
    assert!(again.iter().all(|g| g.abs() == 0.0));
    tag.rearm();
    let third = tag.react(&incident);
    assert!(third.iter().any(|g| g.abs() > 0.0));
}
