//! End-to-end integration: the full BackFi system across every crate.

use backfi::prelude::*;

fn quick(distance: f64) -> LinkConfig {
    let mut cfg = LinkConfig::at_distance(distance);
    cfg.excitation.wifi_payload_bytes = 1200;
    cfg
}

#[test]
fn all_modulations_decode_at_close_range() {
    for m in TagModulation::ALL {
        let mut cfg = quick(0.5);
        cfg.tag.modulation = m;
        cfg.tag.symbol_rate_hz = 1e6;
        let rep = LinkSimulator::new(cfg).run(3);
        assert!(
            rep.success,
            "{m:?} should decode at 0.5 m: {:?}",
            rep.reader_error
        );
    }
}

#[test]
fn both_code_rates_decode() {
    for r in [CodeRate::Half, CodeRate::TwoThirds] {
        let mut cfg = quick(1.0);
        cfg.tag.code_rate = r;
        let rep = LinkSimulator::new(cfg).run(5);
        assert!(rep.success, "rate {} failed", r.label());
    }
}

#[test]
fn decoded_payload_is_bit_exact() {
    let rep = LinkSimulator::new(quick(1.0)).run(17);
    assert!(rep.success);
    assert!(rep.ber < 1e-9, "ber {}", rep.ber);
}

#[test]
fn throughput_degrades_gracefully_with_range() {
    // SNR must fall monotonically-ish; success flips from true to false as
    // a fast configuration is carried out of range.
    let mut cfg = quick(0.5);
    cfg.tag = TagConfig {
        modulation: TagModulation::Psk16,
        code_rate: CodeRate::Half,
        symbol_rate_hz: 2.5e6,
        preamble_us: 32.0,
    };
    // 16PSK at 2.5 MSPS is the most aggressive tier and only marginally
    // decodable even at 0.5 m (~80% of channel draws); seed 3 is a
    // representative decodable draw.
    let near = LinkSimulator::new(cfg.clone()).run(3);
    assert!(near.success, "16PSK @ 0.5 m: {:?}", near.reader_error);
    cfg.distance_m = 6.0;
    let far = LinkSimulator::new(cfg).run(3);
    assert!(!far.success, "16PSK 2.5 MSPS must fail at 6 m");
}

#[test]
fn self_interference_cancellation_is_deep() {
    let rep = LinkSimulator::new(quick(1.0)).run(21);
    // ~0 dBm of self-interference down to the residual floor.
    assert!(
        rep.cancellation_db > 70.0,
        "cancellation {}",
        rep.cancellation_db
    );
}

#[test]
fn longer_preamble_never_hurts_much() {
    let mut cfg = quick(4.0);
    cfg.tag.symbol_rate_hz = 500e3;
    let short = LinkSimulator::new(cfg.clone()).run(31);
    cfg.tag.preamble_us = 96.0;
    let long = LinkSimulator::new(cfg).run(31);
    if short.success {
        assert!(
            long.success,
            "96 µs preamble should not break a working link"
        );
    }
    if short.measured_snr_db.is_finite() && long.measured_snr_db.is_finite() {
        assert!(long.measured_snr_db > short.measured_snr_db - 2.0);
    }
}

#[test]
fn deterministic_reproduction() {
    let a = LinkSimulator::new(quick(2.0)).run(77);
    let b = LinkSimulator::new(quick(2.0)).run(77);
    assert_eq!(a.success, b.success);
    assert_eq!(a.sent, b.sent);
    assert!((a.measured_snr_db - b.measured_snr_db).abs() < 1e-12);
}

#[test]
fn different_seeds_draw_different_channels() {
    let a = LinkSimulator::new(quick(2.0)).run(1);
    let b = LinkSimulator::new(quick(2.0)).run(2);
    assert!((a.expected_snr_db - b.expected_snr_db).abs() > 1e-6);
}
