//! The paper's central coexistence claim, verified sample-accurately: the
//! WiFi client decodes its packet *from the very same transmission* the tag
//! is backscattering on — "the excitation signal is in fact a WiFi packet
//! meant for a regular WiFi client which receives and decodes the WiFi packet
//! without ever noticing the presence of the backscatter communication"
//! (Fig. 4 caption).

use backfi::chan::budget::{dbm_to_lin, LinkBudget};
use backfi::chan::multipath::MultipathProfile;
use backfi::core::excitation::{Excitation, ExcitationConfig};
use backfi::prelude::*;
use backfi_dsp::fir::filter;
use backfi_dsp::noise::add_noise;
use backfi_dsp::rng::SplitMix64;

/// Build the shared scene: the AP's excitation, the tag's reaction to it,
/// and the client's received signal (direct + tag-scattered + noise).
fn client_rx(tag_active: bool, seed: u64) -> (Vec<backfi::dsp::Complex>, Vec<u8>) {
    let budget = LinkBudget::default();
    let exc = Excitation::build(ExcitationConfig {
        wifi_payload_bytes: 800,
        ..Default::default()
    });
    let mut rng = SplitMix64::new(seed);

    // Tag at 0.5 m reacts to the forward signal.
    let a_tx = budget.tx_power().sqrt();
    let xs: Vec<_> = exc.samples.iter().map(|&v| v * a_tx).collect();
    let h_f = MultipathProfile::indoor_los().realize(&mut rng);
    let mut tag = Tag::new(exc.config.tag_id, TagConfig::default());
    let gamma = if tag_active {
        tag.load_data(&[0xAB; 32]);
        let incident: Vec<_> = filter(&h_f, &xs)
            .iter()
            .map(|v| v.scale(dbm_to_lin(-budget.tag_scatter_leg_db(0.5)).sqrt()))
            .collect();
        tag.react(&incident)
    } else {
        vec![backfi::dsp::Complex::ZERO; xs.len()]
    };

    // Client at 3 m: direct path + the tag's scattered waveform.
    let a_c = budget.wifi_amplitude(3.0) * a_tx;
    let h_c = MultipathProfile::indoor_los().realize(&mut rng);
    let mut y: Vec<_> = filter(&h_c, &exc.samples)
        .iter()
        .map(|v| v.scale(a_c))
        .collect();
    if tag_active {
        let leg = |d: f64| dbm_to_lin(-budget.tag_scatter_leg_db(d)).sqrt();
        let scatter_amp = leg(0.5) * leg(2.6) * a_tx;
        let z = filter(&h_f, &exc.samples);
        let modded: Vec<_> = z
            .iter()
            .zip(&gamma)
            .map(|(v, g)| (*v * *g).scale(scatter_amp))
            .collect();
        let h_tc = MultipathProfile::indoor_nlos().realize(&mut rng);
        let scattered = filter(&h_tc, &modded);
        for (a, b) in y.iter_mut().zip(&scattered) {
            *a += *b;
        }
    }
    add_noise(&mut rng, &mut y, budget.noise_power());
    (y, exc.wifi_psdu)
}

#[test]
fn client_decodes_without_tag() {
    let (y, psdu) = client_rx(false, 4);
    let rx = WifiReceiver::default();
    // The buffer holds CTS + pulses + data packet; the receiver must sync to
    // a packet and decode. It may lock onto the CTS first — search forward.
    let got = decode_data_packet(&rx, &y).expect("client decode");
    assert_eq!(got, psdu);
}

#[test]
fn client_decodes_while_tag_backscatters() {
    let (y, psdu) = client_rx(true, 4);
    let rx = WifiReceiver::default();
    let got = decode_data_packet(&rx, &y).expect("client decode with tag active");
    assert_eq!(got, psdu);
    assert!(backfi::wifi::mac::check_fcs(&got));
}

#[test]
fn tag_and_client_serviced_by_one_transmission() {
    // The same excitation serves both receivers: run the reader-side link at
    // 0.5 m and the client-side decode for the same scenario family.
    let mut cfg = LinkConfig::at_distance(0.5);
    cfg.excitation.wifi_payload_bytes = 800;
    let rep = LinkSimulator::new(cfg).run(4);
    assert!(rep.success, "tag uplink failed: {:?}", rep.reader_error);

    let (y, psdu) = client_rx(true, 4);
    let got = decode_data_packet(&WifiReceiver::default(), &y).expect("client");
    assert_eq!(got, psdu);
}

/// Decode the *data* packet from a buffer that also contains the CTS-to-self
/// and the wake-up pulse train (whose constant envelope can false-trigger the
/// STF detector): scan forward past every decode or sync failure.
fn decode_data_packet(rx: &WifiReceiver, buf: &[backfi::dsp::Complex]) -> Option<Vec<u8>> {
    let mut at = 0usize;
    for _ in 0..64 {
        if at + 2000 >= buf.len() {
            return None;
        }
        match rx.receive(&buf[at..]) {
            Ok(got) if got.psdu.len() > 14 => return Some(got.psdu),
            Ok(got) => at += got.start + 900, // skip the whole CTS
            Err(_) => at += 300,              // false trigger — step past it
        }
    }
    None
}
