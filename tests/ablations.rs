//! Ablations of BackFi's design choices (DESIGN.md §5): each test removes
//! one ingredient and verifies the failure mode the paper predicts.

use backfi::prelude::*;

fn base(distance: f64) -> LinkConfig {
    let mut cfg = LinkConfig::at_distance(distance);
    cfg.excitation.wifi_payload_bytes = 1200;
    cfg
}

#[test]
fn zero_forcing_combiner_underperforms_mrc() {
    // §4.3.2: dividing by the wideband reference "works poorly because it
    // will also divide the noise term … and in many scenarios amplify it."
    let mut cfg = base(3.0);
    cfg.tag.symbol_rate_hz = 500e3;
    let mrc = LinkSimulator::new(cfg.clone()).run(11);

    cfg.reader.use_zero_forcing = true;
    let zf = LinkSimulator::new(cfg).run(11);

    assert!(mrc.success, "MRC link should work at 3 m");
    // ZF either fails outright or loses several dB of symbol SNR.
    if zf.success {
        assert!(
            mrc.measured_snr_db > zf.measured_snr_db + 3.0,
            "MRC {} dB vs ZF {} dB",
            mrc.measured_snr_db,
            zf.measured_snr_db
        );
    }
}

#[test]
fn disabling_analog_stage_floods_the_adc() {
    let mut cfg = base(1.0);
    cfg.reader.canceller.analog_enabled = false;
    let rep = LinkSimulator::new(cfg).run(13);
    // With ~0 dBm of leakage hitting the AGC, the quantization floor buries
    // the backscatter: the link must fail or lose most of its SNR.
    let ok_base = LinkSimulator::new(base(1.0)).run(13);
    assert!(ok_base.success);
    assert!(
        !rep.success || rep.measured_snr_db < ok_base.measured_snr_db - 6.0,
        "analog-less link unexpectedly healthy: {:?} / {} dB",
        rep.success,
        rep.measured_snr_db
    );
}

#[test]
fn disabling_digital_stage_leaves_residue() {
    // Individual seeds can fade; demand that across several deployments the
    // two-stage design works at least twice while analog-only never does.
    let mut ok_two_stage = 0;
    let mut ok_analog_only = 0;
    for seed in [15u64, 16, 17, 18] {
        if LinkSimulator::new(base(2.0)).run(seed).success {
            ok_two_stage += 1;
        }
        let mut cfg = base(2.0);
        cfg.reader.canceller.digital_enabled = false;
        if LinkSimulator::new(cfg).run(seed).success {
            ok_analog_only += 1;
        }
    }
    assert!(ok_two_stage >= 2, "two-stage links: {ok_two_stage}/4");
    assert_eq!(
        ok_analog_only, 0,
        "analog-only cancellation (~40 dB) cannot expose a −90 dBm tag signal"
    );
}

#[test]
fn coding_rescues_marginal_links() {
    // At a range where raw symbol errors occur, the convolutional code is
    // the difference between a clean frame and a lost one.
    let mut found = false;
    for d in [4.0, 4.5, 5.0] {
        let mut cfg = base(d);
        cfg.tag.symbol_rate_hz = 1e6;
        cfg.tag.modulation = TagModulation::Qpsk;
        let rep = LinkSimulator::new(cfg).run(17);
        if rep.success && rep.pre_fec_ber > 1e-3 {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "expected a range where FEC visibly repairs symbol errors"
    );
}

#[test]
fn short_silent_period_is_enough() {
    // §4.2: "this small silent period is sufficient for the reader to
    // estimate the self-interference channel" — 16 µs = 320 samples against
    // a 28-tap estimate.
    let rep = LinkSimulator::new(base(1.0)).run(19);
    assert!(rep.success);
    assert!(rep.cancellation_db > 70.0);
}

#[test]
fn sixteen_psk_needs_more_snr_than_bpsk() {
    // Find a range where BPSK works but 16-PSK does not (same symbol rate) —
    // the modulation ladder that drives rate adaptation.
    let mut bpsk_ok_psk_fails = false;
    for d in [3.0, 4.0, 5.0] {
        let mut cfg_b = base(d);
        cfg_b.tag.modulation = TagModulation::Bpsk;
        cfg_b.tag.symbol_rate_hz = 1e6;
        let b = LinkSimulator::new(cfg_b).run(23);

        let mut cfg_p = base(d);
        cfg_p.tag.modulation = TagModulation::Psk16;
        cfg_p.tag.symbol_rate_hz = 1e6;
        let p = LinkSimulator::new(cfg_p).run(23);

        if b.success && !p.success {
            bpsk_ok_psk_fails = true;
            break;
        }
    }
    assert!(bpsk_ok_psk_fails, "no range separated BPSK from 16-PSK");
}
