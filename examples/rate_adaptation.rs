//! Watch the rate adaptation walk down the configuration ladder as a tag is
//! carried away from the AP — the §6.1 energy-first policy in action.
//!
//! Run with: `cargo run --release --example rate_adaptation`

use backfi::core::sweep::{cycle_configs, max_throughput_bps, TrialStats};
use backfi::prelude::*;
use backfi::reader::rate_adapt;
use backfi::tag::energy::repb;

fn main() {
    println!("carrying a tag away from the AP…\n");
    println!(
        "{:>8} | {:>28} | {:>10} | {:>6}",
        "range", "selected configuration", "throughput", "REPB"
    );
    println!("{}", "-".repeat(64));

    for &d in &[0.5, 1.0, 2.0, 3.0, 5.0] {
        let mut base = LinkConfig::at_distance(d);
        base.excitation.wifi_payload_bytes = 1500;
        let candidates = TagConfig::all_combinations(32.0);
        let stats = cycle_configs(&base, &candidates, 3, 11, false);
        let outcomes: Vec<_> = stats.iter().map(TrialStats::outcome).collect();

        // The paper's policy: among configurations reaching the best
        // achievable throughput, pick the lowest REPB.
        let best_throughput = max_throughput_bps(&stats);
        match rate_adapt::min_repb_at_throughput(&outcomes, best_throughput) {
            Some(cfg) => println!(
                "{:>6} m | {:>28} | {:>7.2} Mb | {:>6.3}",
                d,
                cfg.label(),
                cfg.throughput_bps() / 1e6,
                repb(&cfg)
            ),
            None => println!(
                "{d:>6} m | {:>28} | {:>10} | {:>6}",
                "out of range", "-", "-"
            ),
        }
    }

    println!(
        "\nok: denser modulations and faster switching near the AP, \
              robust slow BPSK at the edge."
    );
}
