//! A battery-free temperature/IMU sensor streaming readings to the cloud.
//!
//! The paper's motivating low-rate scenario (§1, R1): "a few Kbps (e.g.
//! temperature sensors measuring every 100 ms)". The sensor batches readings,
//! wakes on the AP's pulse preamble, and uploads one frame per WiFi packet.
//! We stream 20 frames across repeated exchanges and track delivery and
//! energy.
//!
//! Run with: `cargo run --release --example sensor_stream`

use backfi::prelude::*;
use backfi::tag::energy::epb_pj;

/// A fake sensor producing 12-byte readings (timestamp + 3-axis value).
fn reading(seq: u32) -> Vec<u8> {
    let mut v = Vec::with_capacity(12);
    v.extend_from_slice(&seq.to_le_bytes());
    let t = 21.5 + (seq as f64 * 0.7).sin(); // °C
    v.extend_from_slice(&((t * 100.0) as i32).to_le_bytes());
    v.extend_from_slice(&(seq * 37 + 5).to_le_bytes());
    v
}

fn main() {
    // A low-power configuration: BPSK, rate 1/2, 100 kSPS → 50 kbit/s —
    // plenty for sensor telemetry, at minimal switching energy.
    let mut cfg = LinkConfig::at_distance(3.0);
    cfg.tag = TagConfig {
        modulation: TagModulation::Bpsk,
        code_rate: CodeRate::Half,
        symbol_rate_hz: 100e3,
        preamble_us: 32.0,
    };
    cfg.excitation.wifi_payload_bytes = 3000; // ride on long WiFi frames
    println!("sensor uplink: {} at 3 m", cfg.tag.label());

    let sim = LinkSimulator::new(cfg.clone());
    let mut delivered = 0usize;
    let mut bits = 0usize;
    let mut energy_pj = 0.0;
    let frames = 20;
    for seq in 0..frames {
        // Each exchange rides on a different WiFi packet (different seed →
        // different noise/payload; channels redraw per deployment seed).
        let report = sim.run(1000 + seq as u64);
        let r = reading(seq);
        if report.success {
            delivered += 1;
            bits += r.len() * 8;
        }
        energy_pj += epb_pj(&cfg.tag) * (r.len() * 8) as f64;
    }

    println!("  frames delivered : {delivered}/{frames}");
    println!("  payload bits     : {bits}");
    println!("  tag energy       : {:.2} nJ total", energy_pj / 1e3);
    println!(
        "  per reading      : {:.1} pJ — {:.1} µs of a 100 µW harvester",
        energy_pj / frames as f64,
        (energy_pj / frames as f64) / 100.0
    );
    assert!(
        delivered as f64 >= frames as f64 * 0.8,
        "sensor stream too lossy"
    );
    println!("\nok: telemetry delivered on harvested-power budgets.");
}
