//! A home WiFi network hosting BackFi tags: does the backscatter uplink hurt
//! the humans' WiFi? (The Fig. 12b question, as a runnable scenario.)
//!
//! Ten clients stream around an AP; a tag sits at various distances and
//! modulates whenever the AP transmits. We compare average client throughput
//! with the tag silent vs active.
//!
//! Run with: `cargo run --release --example home_network`

use backfi::core::network::NetworkModel;

fn main() {
    let model = NetworkModel::default();
    println!("home network: 10 clients in a 10 m radius home, 30 random layouts\n");
    println!(
        "{:>12} | {:>12} | {:>12} | {:>8}",
        "tag distance", "tag off", "tag on", "impact"
    );
    println!("{}", "-".repeat(54));

    for &tag_d in &[0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut off_sum = 0.0;
        let mut on_sum = 0.0;
        let layouts = 30;
        for seed in 0..layouts {
            let outcomes = model.run_config(10, 10.0, tag_d, seed);
            let (off, on) = NetworkModel::average_throughput(&outcomes);
            off_sum += off;
            on_sum += on;
        }
        let off = off_sum / layouts as f64;
        let on = on_sum / layouts as f64;
        println!(
            "{:>10} m | {:>9.2} Mb | {:>9.2} Mb | {:>6.1} %",
            tag_d,
            off,
            on,
            100.0 * (off - on) / off
        );
    }

    println!(
        "\nok: the tag only dents WiFi when parked within ~half a metre of \
         the AP — elsewhere its reflections are buried below the noise floor."
    );
}
