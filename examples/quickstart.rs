//! Quickstart: one backscatter exchange, end to end.
//!
//! A BackFi AP sends a WiFi packet to a normal client; a battery-free tag
//! one metre away modulates its sensor reading onto the reflection; the AP
//! decodes it mid-transmission.
//!
//! Run with: `cargo run --release --example quickstart`

use backfi::prelude::*;

fn main() {
    // A deployment: tag at 1 m from the AP, default calibrated link budget,
    // QPSK at 1 MSPS with rate-1/2 coding (→ 1 Mbit/s uplink).
    let mut cfg = LinkConfig::at_distance(1.0);
    cfg.excitation.wifi_payload_bytes = 1500; // ≈0.5 ms WiFi packet @ 24 Mbps

    println!("BackFi quickstart");
    println!("  tag distance      : {} m", cfg.distance_m);
    println!("  tag configuration : {}", cfg.tag.label());
    println!(
        "  uplink throughput : {:.2} Mbps",
        cfg.tag.throughput_bps() / 1e6
    );
    println!(
        "  excitation        : {} byte WiFi frame at {}",
        cfg.excitation.wifi_payload_bytes,
        cfg.excitation.mcs.label()
    );
    println!();

    let sim = LinkSimulator::new(cfg);
    let report = sim.run(42);

    println!("exchange results:");
    println!("  frame decoded     : {}", report.success);
    println!("  payload           : {} bytes", report.sent.len());
    println!("  symbol SNR        : {:.1} dB", report.measured_snr_db);
    println!("  SI cancellation   : {:.1} dB", report.cancellation_db);
    println!("  goodput           : {:.2} Mbps", report.goodput_bps / 1e6);
    println!(
        "  tag energy        : {:.1} pJ  ({:.2} pJ/bit)",
        report.tag_energy_pj,
        report.tag_energy_pj / (report.sent.len() * 8) as f64
    );

    assert!(report.success, "the quickstart link should decode");
    println!("\nok: the AP decoded the tag's data while transmitting WiFi.");
}
