//! A security microphone streaming compressed audio — the paper's high-rate
//! motivating scenario (§1: "a few Mbps (e.g., security microphones/cameras
//! recording audio/video)").
//!
//! 64 kbit/s audio needs sustained throughput; the tag uses rate adaptation
//! (§6.1) to pick the least-energy configuration that still carries the
//! stream at its range.
//!
//! Run with: `cargo run --release --example audio_uplink`

use backfi::core::sweep::{cycle_configs, TrialStats};
use backfi::prelude::*;
use backfi::reader::rate_adapt;
use backfi::tag::energy::repb;

fn main() {
    let audio_rate_bps = 64_000.0; // codec output
    let duty_margin = 4.0; // the AP transmits ~25 % of the time
    let needed = audio_rate_bps * duty_margin;

    for &distance in &[1.0, 4.0] {
        println!(
            "microphone at {distance} m (needs {:.0} kbps of link rate):",
            needed / 1e3
        );
        let mut base = LinkConfig::at_distance(distance);
        base.excitation.wifi_payload_bytes = 1500;

        // Cycle candidate configurations like the paper's methodology.
        let candidates = TagConfig::all_combinations(32.0);
        let stats = cycle_configs(&base, &candidates, 3, 7, false);
        let outcomes: Vec<_> = stats.iter().map(TrialStats::outcome).collect();

        match rate_adapt::min_repb_at_throughput(&outcomes, needed) {
            Some(cfg) => {
                println!("  selected        : {}", cfg.label());
                println!("  link throughput : {:.2} Mbps", cfg.throughput_bps() / 1e6);
                println!(
                    "  REPB            : {:.3} (ref = BPSK 1/2 @ 1 MSPS)",
                    repb(&cfg)
                );
                let effective = cfg.throughput_bps() / duty_margin;
                println!(
                    "  audio margin    : {:.1}x the 64 kbps stream",
                    effective / audio_rate_bps
                );
            }
            None => println!("  no configuration sustains the stream at this range"),
        }
        println!();
    }
    println!("ok: rate adaptation picked energy-minimal configs per range.");
}
