//! # BackFi — high-throughput WiFi backscatter, reproduced in Rust
//!
//! A full-system reproduction of *"BackFi: High Throughput WiFi Backscatter"*
//! (Bharadia, Joshi, Kotaru, Katti — SIGCOMM 2015): an IoT tag that
//! piggybacks megabit-class uplink data on ambient WiFi transmissions by
//! phase-modulating and reflecting them, and a WiFi AP that decodes those
//! reflections *while transmitting*, thanks to full-duplex self-interference
//! cancellation.
//!
//! This crate is a facade: it re-exports the workspace crates so downstream
//! users can depend on a single package.
//!
//! ```
//! use backfi::prelude::*;
//!
//! // One reader ↔ tag exchange at half a metre with all defaults.
//! let mut cfg = LinkConfig::at_distance(0.5);
//! cfg.excitation.wifi_payload_bytes = 1200;
//! let report = LinkSimulator::new(cfg).run(42);
//! assert!(report.success);
//! assert!(report.cancellation_db > 60.0);
//! ```
//!
//! Layering (bottom-up):
//!
//! | crate | role |
//! |---|---|
//! | [`dsp`] | complex baseband primitives (FFT, FIR, correlation, …) |
//! | [`coding`] | K=7 convolutional code, Viterbi, 802.11 scrambler/interleaver, CRCs, PN |
//! | [`wifi`] | full 802.11g OFDM PHY (TX+RX) and minimal MAC |
//! | [`chan`] | link budget, multipath, the backscatter medium (Eq. 1/3) |
//! | [`tag`] | the IoT sensor: detector, switch-tree modulator, framer, energy model |
//! | [`sic`] | two-stage self-interference cancellation |
//! | [`reader`] | the AP-side decoder: channel estimation, MRC (Eq. 7), rate adaptation |
//! | [`core`] | end-to-end link/network simulators and every figure's harness |
//! | [`obs`] | structured tracing: stage spans, counters, probe points, run manifests |

#![deny(missing_docs)]
#![warn(clippy::all)]

pub use backfi_chan as chan;
pub use backfi_coding as coding;
pub use backfi_core as core;
pub use backfi_dsp as dsp;
pub use backfi_obs as obs;
pub use backfi_reader as reader;
pub use backfi_sic as sic;
pub use backfi_tag as tag;
pub use backfi_wifi as wifi;

/// The most common imports for building simulations.
pub mod prelude {
    pub use backfi_chan::budget::LinkBudget;
    pub use backfi_chan::medium::{BackscatterMedium, MediumConfig};
    pub use backfi_coding::CodeRate;
    pub use backfi_core::excitation::{Excitation, ExcitationConfig};
    pub use backfi_core::link::{LinkConfig, LinkReport, LinkSimulator};
    pub use backfi_dsp::Complex;
    pub use backfi_reader::reader::{BackscatterReader, ReaderConfig};
    pub use backfi_reader::Timeline;
    pub use backfi_tag::config::{TagConfig, TagModulation};
    pub use backfi_tag::Tag;
    pub use backfi_wifi::{Mcs, WifiReceiver, WifiTransmitter};
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compile() {
        use crate::prelude::*;
        let cfg = LinkConfig::at_distance(2.0);
        assert_eq!(cfg.tag, TagConfig::default());
        let _ = Complex::ONE;
    }
}
